package gpu

import (
	"testing"
	"testing/quick"

	"golatest/internal/sim/clock"
)

// TestIntegrationConservationProperty: for any schedule of clock changes,
// a block's iterations tile its execution span exactly — no gaps, no
// overlaps, no lost cycles (in host time, before timestamp quantisation
// hides sub-quantum structure). We verify via device timestamps with a
// 1 ns quantum so quantisation is exact.
func TestIntegrationConservationProperty(t *testing.T) {
	f := func(changes []uint8, seed uint16) bool {
		clk := clock.New()
		d, err := New(Config{
			Name:           "prop-gpu",
			SMCount:        2,
			FreqsMHz:       []float64{500, 750, 1000, 1250},
			TimerQuantumNs: 1,
			WakeDelayNs:    1,
			Latency:        fixedModel{bus: 1000, dur: 100_000},
			Seed:           uint64(seed) + 1,
		}, clk)
		if err != nil {
			return false
		}
		k, err := d.Launch(KernelSpec{Iters: 200, CyclesPerIter: 50_000, Blocks: 1})
		if err != nil {
			return false
		}
		freqs := d.Config().FreqsMHz
		for i, c := range changes {
			if i >= 6 {
				break
			}
			clk.Advance(int64(c)*100_000 + 50_000)
			if _, err := d.SetFrequency(freqs[int(c)%len(freqs)]); err != nil {
				return false
			}
		}
		d.Synchronize()
		block := k.Samples()[0]
		for i := 1; i < len(block); i++ {
			if block[i].StartNs != block[i-1].EndNs {
				return false // gap or overlap between iterations
			}
		}
		for _, it := range block {
			if it.DurNs() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInjectionOrderingProperty: injections are recorded in request order
// with apply ≥ request and complete ≥ apply, whatever the call pattern.
func TestInjectionOrderingProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		clk := clock.New()
		d, err := New(Config{
			Name:     "prop-gpu",
			SMCount:  1,
			FreqsMHz: []float64{500, 750, 1000},
			Latency:  fixedModel{bus: 5_000, dur: 2_000_000},
			Seed:     7,
		}, clk)
		if err != nil {
			return false
		}
		freqs := d.Config().FreqsMHz
		for i, s := range steps {
			if i >= 12 {
				break
			}
			clk.Advance(int64(s) * 300_000)
			if _, err := d.SetFrequency(freqs[int(s)%len(freqs)]); err != nil {
				return false
			}
		}
		injs := d.Injections()
		var prevReq int64 = -1
		for _, in := range injs {
			if in.RequestNs < prevReq {
				return false
			}
			if in.ApplyNs < in.RequestNs || in.CompleteNs < in.ApplyNs {
				return false
			}
			prevReq = in.RequestNs
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFreqAlwaysInTableProperty: whatever the request sequence, the
// effective clock at any instant is either a table clock or (under a
// ramp) between the two endpoints of an in-flight transition.
func TestFreqAlwaysInTableProperty(t *testing.T) {
	f := func(steps []uint8, probe []uint16) bool {
		clk := clock.New()
		d, err := New(Config{
			Name:     "prop-gpu",
			SMCount:  1,
			FreqsMHz: []float64{400, 800, 1200},
			Latency:  fixedModel{bus: 10_000, dur: 700_000},
			Seed:     3,
		}, clk)
		if err != nil {
			return false
		}
		freqs := d.Config().FreqsMHz
		for i, s := range steps {
			if i >= 8 {
				break
			}
			clk.Advance(int64(s)*100_000 + 1)
			if _, err := d.SetFrequency(freqs[int(s)%len(freqs)]); err != nil {
				return false
			}
		}
		min, max := freqs[0], freqs[len(freqs)-1]
		for i, p := range probe {
			if i >= 8 {
				break
			}
			clk.Advance(int64(p))
			got := d.CurrentFreqMHz()
			if got < min || got > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
