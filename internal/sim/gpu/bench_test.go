package gpu

import (
	"testing"

	"golatest/internal/sim/clock"
)

// BenchmarkKernelMaterialization measures the simulator's hot path: the
// per-iteration timeline integration across a mid-kernel clock change.
func BenchmarkKernelMaterialization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		clk := clock.New()
		d, err := New(Config{
			Name:     "bench-gpu",
			SMCount:  4,
			FreqsMHz: []float64{600, 1200},
			Latency:  fixedModel{bus: 50_000, dur: 10_000_000},
			Seed:     uint64(i),
		}, clk)
		if err != nil {
			b.Fatal(err)
		}
		k, err := d.Launch(KernelSpec{Iters: 2000, CyclesPerIter: 150_000})
		if err != nil {
			b.Fatal(err)
		}
		clk.Advance(5_000_000)
		if _, err := d.SetFrequency(600); err != nil {
			b.Fatal(err)
		}
		d.Synchronize()
		if !k.Done() {
			b.Fatal("kernel not materialised")
		}
	}
}

// BenchmarkTimelineLookups measures randomish-access frequency queries
// against a long timeline.
func BenchmarkTimelineLookups(b *testing.B) {
	tl := newTimeline(0, 1000)
	for t := int64(1); t <= 1000; t++ {
		tl.add(t*1_000_000, 500+float64(t%100)*10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.freqAt(int64(i%1000) * 997_000)
	}
}

// BenchmarkDeviceTimeAt measures the timestamp conversion used for every
// recorded iteration boundary.
func BenchmarkDeviceTimeAt(b *testing.B) {
	d, err := New(Config{
		Name:          "bench-gpu",
		SMCount:       1,
		FreqsMHz:      []float64{1000},
		ClockOffsetNs: 123_456_789,
		ClockDriftPPM: 3,
		Latency:       fixedModel{},
		Seed:          1,
	}, clock.New())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DeviceTimeAt(int64(i) * 1013)
	}
}
