package gpu

import "fmt"

// KernelSpec describes the microbenchmark kernel of the methodology: one
// block resident per SM, each looping over iterations of a fixed
// arithmetic cycle budget, with a device timestamp read at the first and
// last instruction of every iteration.
type KernelSpec struct {
	// Iters is the number of timed iterations each block executes.
	Iters int
	// CyclesPerIter is the arithmetic work per iteration in SM cycles.
	// At clock f MHz an iteration nominally lasts CyclesPerIter/f µs.
	CyclesPerIter float64
	// Blocks is the number of SM-resident blocks to simulate and record.
	// Zero means one block per SM (the methodology's full-load shape).
	// Smaller values keep huge campaigns cheap while remaining faithful:
	// per-SM populations are statistically identical.
	Blocks int
}

func (s KernelSpec) validate(cfg *Config) error {
	if s.Iters <= 0 {
		return fmt.Errorf("gpu: kernel Iters must be positive, got %d", s.Iters)
	}
	if s.CyclesPerIter <= 0 {
		return fmt.Errorf("gpu: kernel CyclesPerIter must be positive, got %v", s.CyclesPerIter)
	}
	if s.Blocks < 0 || s.Blocks > cfg.SMCount {
		return fmt.Errorf("gpu: kernel Blocks %d out of range [0, %d]", s.Blocks, cfg.SMCount)
	}
	return nil
}

// NominalIterNs returns the iteration duration in nanoseconds the spec
// implies at the given clock, before jitter and SM speed variation.
func (s KernelSpec) NominalIterNs(freqMHz float64) float64 {
	return s.CyclesPerIter * 1000 / freqMHz
}

// IterSample is one timed iteration: device-clock timestamps of its first
// and last instruction, already quantised to the timer refresh period.
type IterSample struct {
	StartNs int64
	EndNs   int64
}

// DurNs returns the measured iteration duration in device-clock
// nanoseconds.
func (s IterSample) DurNs() int64 { return s.EndNs - s.StartNs }

// Kernel is a launched (possibly still pending) microbenchmark kernel.
type Kernel struct {
	spec       KernelSpec
	enqueuedNs int64
	dev        *Device
	sink       SampleSink

	done    bool
	startNs int64
	endNs   int64
	samples [][]IterSample
}

// Spec returns the launch specification.
func (k *Kernel) Spec() KernelSpec { return k.spec }

// Done reports whether the kernel has been materialised by a Synchronize.
func (k *Kernel) Done() bool { return k.done }

// StartNs returns the host time execution began. Valid only after Done.
func (k *Kernel) StartNs() int64 { return k.startNs }

// EndNs returns the host time the last block finished. Valid only after
// Done.
func (k *Kernel) EndNs() int64 { return k.endNs }

// Samples returns the per-block iteration timings ([block][iteration]).
// Valid only after Done; the caller must not modify the slices. Kernels
// launched with a SampleSink stream their timings instead of storing
// them, so Samples panics for them.
func (k *Kernel) Samples() [][]IterSample {
	if !k.done {
		panic("gpu: Samples read before Synchronize")
	}
	if k.sink != nil {
		panic("gpu: Samples unavailable: kernel streamed into a SampleSink")
	}
	return k.samples
}

// DurationsMs flattens all blocks' iteration durations into milliseconds,
// the unit the statistics layer works in. The returned slice is freshly
// allocated; hot paths should prefer AppendDurationsMs with a pooled
// buffer (GetDurationsBuf/PutDurationsBuf).
func (k *Kernel) DurationsMs() []float64 {
	return k.AppendDurationsMs(nil)
}

// AppendDurationsMs appends all blocks' iteration durations (ms) to buf
// and returns the extended slice, growing it only when capacity runs out.
func (k *Kernel) AppendDurationsMs(buf []float64) []float64 {
	samples := k.Samples()
	var n int
	for _, block := range samples {
		n += len(block)
	}
	if cap(buf)-len(buf) < n {
		grown := make([]float64, len(buf), len(buf)+n)
		copy(grown, buf)
		buf = grown
	}
	for _, block := range samples {
		for _, it := range block {
			buf = append(buf, float64(it.DurNs())/1e6)
		}
	}
	return buf
}
