package gpu

// Energy accounting. The paper's motivation (§I, §VIII) is energy-aware
// runtime systems: switching latency matters because it bounds how often
// DVFS retuning can pay off. The simulator therefore meters energy so
// downstream examples can close the loop from "measured latency matrix"
// to "realised savings".
//
// The model is the standard cube law: busy power at clock f is
//
//	P(f) = IdleW + (MaxBusyW − IdleW) · (f/fmax)³
//
// and idle power is IdleW. Energy integrates lazily over the same
// segment walk the thermal model uses.

// EnergyMeter accumulates joules over the device's lifetime.
type energyMeter struct {
	joules       float64
	lastUpdateNs int64
}

// busyPowerW returns the power draw when all SMs run at clock f.
func (c *Config) busyPowerW(freqMHz float64) float64 {
	ratio := freqMHz / c.MaxFreqMHz()
	return c.IdlePowerW + (c.MaxBusyPowerW-c.IdlePowerW)*ratio*ratio*ratio
}

// accumulate adds the energy of [e.lastUpdateNs, nowNs] at power p.
func (e *energyMeter) accumulate(nowNs int64, powerW float64) {
	dt := nowNs - e.lastUpdateNs
	if dt <= 0 {
		return
	}
	e.joules += powerW * float64(dt) / 1e9
	e.lastUpdateNs = nowNs
}

// EnergyJ reports the cumulative energy consumed up to the current host
// time, counting idle draw for the gap since the last activity.
func (d *Device) EnergyJ() float64 {
	now := d.clk.Now()
	if now > d.energy.lastUpdateNs {
		d.energy.accumulate(now, d.cfg.IdlePowerW)
	}
	return d.energy.joules
}

// meterBusy integrates busy power across [start, end] following the
// effective clock (wake window and throttle clamp included); called from
// materialize after the thermal walk.
func (d *Device) meterBusy(start, end, wakeEnd int64) {
	// Idle draw from the last update until the kernel starts.
	if start > d.energy.lastUpdateNs {
		d.energy.accumulate(start, d.cfg.IdlePowerW)
	}
	cur := d.tl.cursor()
	for t := start; t < end; {
		f, segEnd := cur.freqAt(t)
		if t < wakeEnd {
			f = d.cfg.IdleFreqMHz
			if wakeEnd < segEnd {
				segEnd = wakeEnd
			}
		} else if d.clampMHz > 0 && f > d.clampMHz {
			f = d.clampMHz
		}
		if segEnd > end {
			segEnd = end
		}
		d.energy.accumulate(segEnd, d.cfg.busyPowerW(f))
		t = segEnd
	}
}
