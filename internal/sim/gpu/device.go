package gpu

import (
	"fmt"
	"math"

	"golatest/internal/sim/clock"
)

// Injection is the ground-truth record of one frequency-change request.
// Real hardware never exposes CompleteNs; the simulator records it so the
// methodology's measured switching latency can be validated against the
// injected one (CompleteNs − RequestNs).
type Injection struct {
	RequestNs  int64 // host time the request was issued
	ApplyNs    int64 // host time the command reached the device
	CompleteNs int64 // host time the transition finished
	InitMHz    float64
	TargetMHz  float64
}

// SwitchingLatencyNs returns the ground-truth switching latency of this
// injection: command issue to transition completion.
func (in Injection) SwitchingLatencyNs() int64 { return in.CompleteNs - in.RequestNs }

// Device is one simulated accelerator attached to a host virtual clock.
//
// A Device is not safe for concurrent use, matching the single-threaded
// host loop that drives the benchmark; analysis of returned samples may
// be parallelised freely since samples are plain values.
type Device struct {
	cfg Config
	clk *clock.Clock
	rng *clock.Rand

	tl        *timeline
	setFreq   float64
	injected  []Injection
	kernelSeq uint64

	smSpeed []float64

	thermal  thermalState
	energy   energyMeter
	reasons  ThrottleReason
	clampMHz float64 // 0 = unclamped

	busyEndNs int64
	everBusy  bool
	queue     []*Kernel

	// kernelScratch and smScratch are the reusable child streams of the
	// materialisation path (one kernel, one SM at a time), re-seeded in
	// place so per-kernel RNG derivation never allocates.
	kernelScratch *clock.Rand
	smScratch     *clock.Rand
}

// New constructs a device from cfg (normalised internally) bound to the
// given host clock.
func New(cfg Config, clk *clock.Clock) (*Device, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:           cfg,
		clk:           clk,
		rng:           clock.NewRand(cfg.Seed, 0x6c6174657374), // "latest"
		kernelScratch: clock.NewRand(0, 0),
		smScratch:     clock.NewRand(0, 0),
	}
	d.tl = newTimeline(clk.Now(), cfg.DefaultFreqMHz)
	d.setFreq = cfg.DefaultFreqMHz
	d.smSpeed = make([]float64, cfg.SMCount)
	speedRng := d.rng.Child(1)
	for i := range d.smSpeed {
		d.smSpeed[i] = speedRng.Normal(1, cfg.SMSpeedSigma)
	}
	d.thermal = thermalState{tempC: cfg.AmbientC, lastUpdateNs: clk.Now()}
	d.energy = energyMeter{lastUpdateNs: clk.Now()}
	return d, nil
}

// Config returns a copy of the device's normalised configuration.
func (d *Device) Config() Config { return d.cfg }

// Clock returns the host clock the device is bound to.
func (d *Device) Clock() *clock.Clock { return d.clk }

// SetFrequency requests an SM applications-clock change to targetMHz at
// the current host time. The request incurs a bus delay before the device
// receives it and a transition period before the new clock is effective,
// both sampled from the architecture's latency model. The ground-truth
// Injection record is returned.
//
// The caller (normally the nvml layer) is responsible for modelling the
// host-side blocking cost of the driver call.
func (d *Device) SetFrequency(targetMHz float64) (Injection, error) {
	if !d.cfg.SupportsFreq(targetMHz) {
		return Injection{}, fmt.Errorf("gpu: %s: unsupported SM clock %v MHz", d.cfg.Name, targetMHz)
	}
	now := d.clk.Now()
	initMHz := d.tl.freqAt(now)
	tr := d.cfg.Latency.Sample(initMHz, targetMHz, d.rng)
	if tr.BusDelayNs < 0 || tr.DurationNs < 0 {
		return Injection{}, fmt.Errorf("gpu: %s: latency model produced negative transition %+v", d.cfg.Name, tr)
	}
	apply := now + tr.BusDelayNs
	complete := apply + tr.DurationNs
	if initMHz == targetMHz {
		// Setting the already-effective clock completes on receipt.
		complete = apply
	}
	d.tl.addRamp(apply, complete, targetMHz, d.cfg.RampSteps)
	d.setFreq = targetMHz

	// Dropping below the power cap releases the power throttle latch.
	if d.cfg.PowerCapMHz > 0 && targetMHz <= d.cfg.PowerCapMHz && d.reasons.Has(ThrottlePower) {
		d.reasons &^= ThrottlePower
		d.thermal.busyAboveCapNs = 0
		d.refreshClamp()
	}

	inj := Injection{
		RequestNs:  now,
		ApplyNs:    apply,
		CompleteNs: complete,
		InitMHz:    initMHz,
		TargetMHz:  targetMHz,
	}
	d.injected = append(d.injected, inj)
	return inj, nil
}

// SetFreqMHz reports the last programmed applications clock.
func (d *Device) SetFreqMHz() float64 { return d.setFreq }

// CurrentFreqMHz reports the clock effective right now, including any
// throttle clamp.
func (d *Device) CurrentFreqMHz() float64 {
	f := d.tl.freqAt(d.clk.Now())
	if d.clampMHz > 0 && f > d.clampMHz {
		return d.clampMHz
	}
	return f
}

// Injections returns the ground-truth records of all frequency-change
// requests issued so far, in request order. The returned slice is shared;
// callers must not modify it.
func (d *Device) Injections() []Injection { return d.injected }

// LastInjection returns the most recent injection record.
// ok is false when no request has been issued yet.
func (d *Device) LastInjection() (inj Injection, ok bool) {
	if len(d.injected) == 0 {
		return Injection{}, false
	}
	return d.injected[len(d.injected)-1], true
}

// DeviceTimeAt converts a host timestamp to the device's global-timer
// reading at that instant: offset plus drift, quantised to the timer
// refresh period.
func (d *Device) DeviceTimeAt(hostNs int64) int64 {
	t := hostNs + d.cfg.ClockOffsetNs
	if d.cfg.ClockDriftPPM != 0 {
		t += int64(float64(hostNs) * d.cfg.ClockDriftPPM / 1e6)
	}
	q := d.cfg.TimerQuantumNs
	return t - mod(t, q)
}

// HostTimeFor inverts DeviceTimeAt up to quantisation: it returns the
// host timestamp whose device-clock reading is closest to devNs. Used by
// analysis code to map device timestamps back onto the host timeline.
func (d *Device) HostTimeFor(devNs int64) int64 {
	t := devNs - d.cfg.ClockOffsetNs
	if d.cfg.ClockDriftPPM != 0 {
		t -= int64(float64(t) * d.cfg.ClockDriftPPM / 1e6)
	}
	return t
}

// Temperature reports the die temperature in °C at the current host time,
// applying idle cooling since the device last finished work, and releases
// the thermal throttle once the temperature has fallen through the
// hysteresis band.
func (d *Device) Temperature() float64 {
	now := d.clk.Now()
	if now > d.thermal.lastUpdateNs {
		// Between materialised kernels the device is idle.
		d.thermal.evolve(&d.cfg, now, d.tl.freqAt(now), false)
	}
	if d.reasons.Has(ThrottleThermal) &&
		d.thermal.tempC < d.cfg.ThermalLimitC-d.cfg.ThermalHysteresisC {
		d.reasons &^= ThrottleThermal
		d.refreshClamp()
	}
	return d.thermal.tempC
}

// ThrottleReasons reports the active throttle reasons at the current host
// time (refreshing thermal recovery first, like an NVML register read).
func (d *Device) ThrottleReasons() ThrottleReason {
	d.Temperature()
	return d.reasons
}

// refreshClamp recomputes the clock clamp from the active reasons.
func (d *Device) refreshClamp() {
	d.clampMHz = 0
	if d.reasons.Has(ThrottleThermal) {
		d.clampMHz = d.cfg.ThrottleClampMHz
	}
	if d.reasons.Has(ThrottlePower) && d.cfg.PowerCapMHz > 0 {
		if d.clampMHz == 0 || d.cfg.PowerCapMHz < d.clampMHz {
			d.clampMHz = d.cfg.PowerCapMHz
		}
	}
}

// Launch enqueues a kernel for execution. The host clock advances by the
// launch overhead; the kernel itself executes asynchronously in virtual
// time and its timings materialise on Synchronize.
func (d *Device) Launch(spec KernelSpec) (*Kernel, error) {
	return d.LaunchWithSink(spec, nil)
}

// LaunchWithSink enqueues a kernel whose iteration timings stream into
// sink during materialisation instead of being stored on the kernel: the
// per-block sample slices are never allocated and Samples becomes
// unavailable. A nil sink is equivalent to Launch.
func (d *Device) LaunchWithSink(spec KernelSpec, sink SampleSink) (*Kernel, error) {
	if err := spec.validate(&d.cfg); err != nil {
		return nil, err
	}
	d.clk.Advance(d.cfg.LaunchOverheadNs)
	k := &Kernel{spec: spec, enqueuedNs: d.clk.Now(), dev: d, sink: sink}
	d.queue = append(d.queue, k)
	return k, nil
}

// Synchronize blocks the host until every queued kernel has finished:
// kernels are materialised FIFO against the frequency timeline, thermal
// state advances, throttles latch, and the host clock lands on the final
// completion time.
func (d *Device) Synchronize() {
	for _, k := range d.queue {
		d.materialize(k)
	}
	d.queue = d.queue[:0]
	if d.busyEndNs > d.clk.Now() {
		d.clk.AdvanceTo(d.busyEndNs)
	}
}

// Pending reports the number of launched, not-yet-synchronised kernels.
func (d *Device) Pending() int { return len(d.queue) }

// materialize computes the per-SM iteration timings of kernel k.
func (d *Device) materialize(k *Kernel) {
	start := k.enqueuedNs
	if d.busyEndNs > start {
		start = d.busyEndNs
	}

	// Wake-up: a kernel arriving after an idle gap runs at idle clocks
	// for the wake delay before the programmed frequency takes hold.
	wakeEnd := int64(0)
	idleGap := start - d.busyEndNs
	if !d.everBusy || idleGap > d.cfg.IdleTimeoutNs {
		wakeEnd = start + d.cfg.WakeDelayNs
	}

	// Thermal: idle cooling from the last update until the kernel start.
	if start > d.thermal.lastUpdateNs {
		d.thermal.evolve(&d.cfg, start, d.tl.freqAt(start), false)
	}

	d.kernelSeq++
	kernelRng := d.rng.ChildInto(d.kernelScratch, 0x1000+d.kernelSeq)

	blocks := k.spec.Blocks
	if blocks == 0 || blocks > d.cfg.SMCount {
		blocks = d.cfg.SMCount
	}
	if k.sink == nil {
		k.samples = make([][]IterSample, blocks)
	}
	k.startNs = start

	var maxEnd int64
	for sm := 0; sm < blocks; sm++ {
		smRng := kernelRng.ChildInto(d.smScratch, uint64(sm))
		end := d.runSM(k, sm, start, wakeEnd, smRng)
		if end > maxEnd {
			maxEnd = end
		}
	}
	k.endNs = maxEnd
	k.done = true

	// Thermal: integrate across the kernel's busy window piecewise, at the
	// effective clock of each timeline segment (wake window and throttle
	// clamp included), so long transitions and wake periods heat honestly.
	tcur := d.tl.cursor()
	for t := start; t < maxEnd; {
		f, segEnd := tcur.freqAt(t)
		if t < wakeEnd {
			f = d.cfg.IdleFreqMHz
			if wakeEnd < segEnd {
				segEnd = wakeEnd
			}
		} else if d.clampMHz > 0 && f > d.clampMHz {
			f = d.clampMHz
		}
		if segEnd > maxEnd {
			segEnd = maxEnd
		}
		d.thermal.evolve(&d.cfg, segEnd, f, true)
		t = segEnd
	}
	if d.thermal.tempC > d.cfg.ThermalLimitC && !d.reasons.Has(ThrottleThermal) {
		d.reasons |= ThrottleThermal
		d.refreshClamp()
	}
	if d.cfg.PowerCapMHz > 0 && d.thermal.busyAboveCapNs > d.cfg.PowerCapDelayNs &&
		!d.reasons.Has(ThrottlePower) {
		d.reasons |= ThrottlePower
		d.refreshClamp()
	}

	d.meterBusy(start, maxEnd, wakeEnd)

	d.busyEndNs = maxEnd
	d.everBusy = true
}

// runSM executes the iteration loop of one SM-resident block, recording
// quantised device timestamps for every iteration, and returns the host
// time at which the block finished. Timings either accumulate into the
// kernel's sample matrix or stream into its sink.
func (d *Device) runSM(k *Kernel, sm int, start, wakeEnd int64, r *clock.Rand) int64 {
	iters := k.spec.Iters
	var samples []IterSample
	if k.sink == nil {
		samples = make([]IterSample, iters)
	} else {
		k.sink.BlockStart(sm, iters)
	}
	cur := d.tl.cursor()
	speed := d.smSpeed[sm]
	t := start
	for i := 0; i < iters; i++ {
		jitter := r.Normal(1, d.cfg.IterJitterSigma)
		if jitter < 0.5 {
			jitter = 0.5 // guard the pathological tail; keeps time positive
		}
		cycles := k.spec.CyclesPerIter * jitter
		dur := d.integrate(t, cycles, speed, wakeEnd, &cur)
		s := IterSample{
			StartNs: d.DeviceTimeAt(t),
			EndNs:   d.DeviceTimeAt(t + dur),
		}
		if k.sink == nil {
			samples[i] = s
		} else {
			k.sink.Sample(sm, i, s)
		}
		t += dur
	}
	if k.sink == nil {
		k.samples[sm] = samples
	} else {
		k.sink.BlockEnd(sm)
	}
	return t
}

// integrate returns the host-time nanoseconds needed to execute the given
// cycle count starting at host time t, walking the frequency timeline and
// honouring the wake window and throttle clamp. The cursor amortises the
// segment lookups across the caller's monotone time walk.
func (d *Device) integrate(t int64, cycles, speed float64, wakeEnd int64, cur *cursor) int64 {
	var elapsed float64
	remaining := cycles
	for remaining > 0 {
		f, segEnd := cur.freqAt(t)
		if t < wakeEnd {
			f = d.cfg.IdleFreqMHz
			if wakeEnd < segEnd {
				segEnd = wakeEnd
			}
		} else if d.clampMHz > 0 && f > d.clampMHz {
			f = d.clampMHz
		}
		// rate in cycles per nanosecond at this effective clock.
		rate := f * speed / 1000
		span := float64(segEnd - t)
		if segEnd == math.MaxInt64 || remaining <= span*rate {
			need := remaining / rate
			elapsed += need
			remaining = 0
			break
		}
		elapsed += span
		remaining -= span * rate
		t = segEnd
	}
	if elapsed < 1 {
		elapsed = 1
	}
	return int64(elapsed + 0.5)
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
