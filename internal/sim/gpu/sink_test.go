package gpu

import (
	"math"
	"testing"

	"golatest/internal/stats"
)

// TestStreamStatsMatchesMaterialised pins the core equivalence of the
// streaming path: the same kernel on an identically seeded device must
// yield bit-identical overall statistics whether its iterations are
// materialised and flattened or streamed through a StreamStats sink.
func TestStreamStatsMatchesMaterialised(t *testing.T) {
	spec := KernelSpec{Iters: 400, CyclesPerIter: 90_000, Blocks: 3}

	matDev, _ := newTestDevice(t, testConfig())
	km, err := matDev.Launch(spec)
	if err != nil {
		t.Fatal(err)
	}
	matDev.Synchronize()

	sinkDev, _ := newTestDevice(t, testConfig())
	sink := NewStreamStats(100)
	ks, err := sinkDev.LaunchWithSink(spec, sink)
	if err != nil {
		t.Fatal(err)
	}
	sinkDev.Synchronize()

	want := stats.Describe(km.DurationsMs())
	got := sink.MeanStd()
	if want != got {
		t.Fatalf("streamed stats %+v != materialised %+v", got, want)
	}
	if km.StartNs() != ks.StartNs() || km.EndNs() != ks.EndNs() {
		t.Fatal("sink kernel timing diverged from materialised kernel")
	}

	// Per-block tails must match the "last 100, at most trailing half"
	// window applied to the materialised trace.
	blocks := km.Samples()
	if sink.NumBlocks() != len(blocks) {
		t.Fatalf("sink blocks = %d, want %d", sink.NumBlocks(), len(blocks))
	}
	for b, block := range blocks {
		tailStart := len(block) - 100
		if tailStart < len(block)/2 {
			tailStart = len(block) / 2
		}
		var acc stats.Accumulator
		for _, it := range block[tailStart:] {
			acc.Add(float64(it.DurNs()) / 1e6)
		}
		if acc.MeanStd() != sink.BlockTail(b) {
			t.Fatalf("block %d tail diverged: %+v vs %+v", b, sink.BlockTail(b), acc.MeanStd())
		}
	}

	// Streamed skewness/kurtosis must agree with the two-pass slice
	// versions to floating-point accuracy.
	durs := km.DurationsMs()
	if g1, want := sink.Skewness(), stats.Skewness(durs); math.Abs(g1-want) > 1e-9*math.Abs(want)+1e-12 {
		t.Fatalf("skewness %v, want %v", g1, want)
	}
	if g2, want := sink.ExcessKurtosis(), stats.ExcessKurtosis(durs); math.Abs(g2-want) > 1e-9*math.Abs(want)+1e-12 {
		t.Fatalf("kurtosis %v, want %v", g2, want)
	}
}

// TestSinkKernelSamplesPanics documents that a streamed kernel keeps no
// trace to return.
func TestSinkKernelSamplesPanics(t *testing.T) {
	dev, _ := newTestDevice(t, testConfig())
	k, err := dev.LaunchWithSink(KernelSpec{Iters: 10, CyclesPerIter: 50_000, Blocks: 1}, NewStreamStats(0))
	if err != nil {
		t.Fatal(err)
	}
	dev.Synchronize()
	defer func() {
		if recover() == nil {
			t.Fatal("Samples() on a streamed kernel did not panic")
		}
	}()
	_ = k.Samples()
}

// TestStreamStatsReset checks a sink can be reused across kernels.
func TestStreamStatsReset(t *testing.T) {
	dev, _ := newTestDevice(t, testConfig())
	sink := NewStreamStats(0)
	for round := 0; round < 3; round++ {
		sink.Reset()
		if _, err := dev.LaunchWithSink(KernelSpec{Iters: 50, CyclesPerIter: 50_000, Blocks: 2}, sink); err != nil {
			t.Fatal(err)
		}
		dev.Synchronize()
		if sink.N() != 100 {
			t.Fatalf("round %d: N = %d, want 100", round, sink.N())
		}
		if sink.NumBlocks() != 2 {
			t.Fatalf("round %d: blocks = %d", round, sink.NumBlocks())
		}
	}
}

// TestAppendDurationsMsReusesBuffer checks the pooled flatten path does
// not grow a sufficient buffer.
func TestAppendDurationsMsReusesBuffer(t *testing.T) {
	dev, _ := newTestDevice(t, testConfig())
	k, err := dev.Launch(KernelSpec{Iters: 64, CyclesPerIter: 50_000, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev.Synchronize()

	buf := make([]float64, 0, 256)
	out := k.AppendDurationsMs(buf)
	if len(out) != 128 {
		t.Fatalf("len = %d, want 128", len(out))
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("sufficient buffer was reallocated")
	}
	if diff := len(k.DurationsMs()) - len(out); diff != 0 {
		t.Fatalf("DurationsMs length differs by %d", diff)
	}
}
