package gpu

import (
	"math"
	"testing"
	"time"

	"golatest/internal/sim/clock"
)

func energyDevice(t *testing.T, mutate func(*Config)) (*Device, *clock.Clock) {
	t.Helper()
	cfg := testConfig()
	cfg.IterJitterSigma = 1e-9
	cfg.SMSpeedSigma = 1e-9
	cfg.IdleTimeoutNs = int64(time.Hour) // keep wake effects out
	if mutate != nil {
		mutate(&cfg)
	}
	return newTestDevice(t, cfg)
}

func TestEnergyIdleDraw(t *testing.T) {
	d, _ := energyDevice(t, nil)
	clk := d.Clock()
	clk.Sleep(10 * time.Second)
	got := d.EnergyJ()
	want := 60.0 * 10 // IdlePowerW × 10 s
	if math.Abs(got-want) > 1 {
		t.Fatalf("idle energy = %v J, want %v", got, want)
	}
}

func TestEnergyBusyAboveIdle(t *testing.T) {
	d, _ := energyDevice(t, nil)
	// ~1 s of load at the default 1200 MHz clock.
	if _, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 12_000_000, Blocks: 1}); err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	got := d.EnergyJ()
	// busyPower(1200 of 1500 max) = 60 + 340·0.8³ ≈ 234 W for ~1 s.
	if got < 180 || got > 280 {
		t.Fatalf("busy energy = %v J, want ≈234", got)
	}
}

func TestEnergyRaceToIdleTradeoff(t *testing.T) {
	// Same total work at 600 vs 1200 MHz. Cube-law busy power means the
	// slower clock wins on busy energy (E ∝ f² for fixed work) as long
	// as idle draw over the freed time is not charged to the job — the
	// classic DVFS trade-off the paper's motivation leans on.
	run := func(freq float64) float64 {
		d, _ := energyDevice(t, nil)
		clk := d.Clock()
		inj, err := d.SetFrequency(freq)
		if err != nil {
			t.Fatal(err)
		}
		clk.AdvanceTo(inj.CompleteNs)
		before := d.EnergyJ()
		if _, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 6_000_000, Blocks: 1}); err != nil {
			t.Fatal(err)
		}
		d.Synchronize()
		return d.EnergyJ() - before
	}
	slow := run(600)
	fast := run(1200)
	if slow >= fast {
		t.Fatalf("cube law violated: E(600)=%v J ≥ E(1200)=%v J", slow, fast)
	}
	// Expected ratio ≈ (60+340·0.4³)/(60+340·0.8³) × 2 (longer runtime):
	// ≈ (81.8/234)·2 ≈ 0.70.
	ratio := slow / fast
	if ratio < 0.5 || ratio > 0.9 {
		t.Fatalf("energy ratio = %v, want ≈0.7", ratio)
	}
}

func TestEnergyMonotoneNonDecreasing(t *testing.T) {
	d, _ := energyDevice(t, nil)
	clk := d.Clock()
	prev := d.EnergyJ()
	for i := 0; i < 5; i++ {
		if _, err := d.Launch(KernelSpec{Iters: 10, CyclesPerIter: 500_000, Blocks: 1}); err != nil {
			t.Fatal(err)
		}
		d.Synchronize()
		clk.Sleep(50 * time.Millisecond)
		got := d.EnergyJ()
		if got < prev {
			t.Fatalf("energy decreased: %v → %v", prev, got)
		}
		prev = got
	}
}

func TestEnergyConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.IdlePowerW = 300
	cfg.MaxBusyPowerW = 100
	if _, err := New(cfg, clock.New()); err == nil {
		t.Fatal("MaxBusyPowerW below IdlePowerW accepted")
	}
}
