package gpu

import (
	"sync"

	"golatest/internal/stats"
)

// SampleSink consumes iteration timings while a kernel materialises,
// instead of the kernel storing the full [][]IterSample trace. Blocks are
// streamed sequentially in index order, iterations in execution order, so
// sink state needs no synchronisation. A kernel launched with a sink does
// not materialise Samples(); callers that need the raw trace (the phase-3
// evaluator) launch without one.
type SampleSink interface {
	// BlockStart announces that block will deliver iters samples.
	BlockStart(block, iters int)
	// Sample delivers iteration iter of block, in order.
	Sample(block, iter int, s IterSample)
	// BlockEnd marks block complete.
	BlockEnd(block int)
}

// StreamStats is the streaming statistics sink the measurement phases
// consume: iteration durations (in milliseconds, the statistics layer's
// unit) fold into a Welford moment accumulator covering every block, plus
// one tail-window accumulator per block for warm-up verification.
//
// The tail window of a block with n iterations covers its last
// min(tailCap, n − n/2) iterations — the same "last 100, at most the
// trailing half" rule the warm-up check applied to materialised traces.
//
// A StreamStats is reusable: Reset clears it for the next kernel while
// keeping the per-block slice allocation.
type StreamStats struct {
	tailCap int

	total  stats.MomentAccumulator
	blocks []tailWindow
}

// tailWindow accumulates one block's trailing iterations.
type tailWindow struct {
	tailStart int
	acc       stats.Accumulator
}

// NewStreamStats returns a sink whose per-block tail windows hold at most
// tailCap iterations (0 defaults to 100, the methodology's warm-up
// window).
func NewStreamStats(tailCap int) *StreamStats {
	if tailCap <= 0 {
		tailCap = 100
	}
	return &StreamStats{tailCap: tailCap}
}

// Reset clears all accumulators for reuse on the next kernel.
func (s *StreamStats) Reset() {
	s.total.Reset()
	s.blocks = s.blocks[:0]
}

// BlockStart implements SampleSink.
func (s *StreamStats) BlockStart(block, iters int) {
	for len(s.blocks) <= block {
		s.blocks = append(s.blocks, tailWindow{})
	}
	tailStart := iters - s.tailCap
	if tailStart < iters/2 {
		tailStart = iters / 2
	}
	s.blocks[block] = tailWindow{tailStart: tailStart}
}

// Sample implements SampleSink.
func (s *StreamStats) Sample(block, iter int, smp IterSample) {
	ms := float64(smp.DurNs()) / 1e6
	s.total.Add(ms)
	if b := &s.blocks[block]; iter >= b.tailStart {
		b.acc.Add(ms)
	}
}

// BlockEnd implements SampleSink.
func (s *StreamStats) BlockEnd(block int) {}

// N reports the total number of iterations folded in so far.
func (s *StreamStats) N() int { return s.total.N() }

// MeanStd returns the overall iteration-duration statistics in ms.
func (s *StreamStats) MeanStd() stats.MeanStd { return s.total.MeanStd() }

// Skewness returns the overall sample skewness (g1).
func (s *StreamStats) Skewness() float64 { return s.total.Skewness() }

// ExcessKurtosis returns the overall sample excess kurtosis (g2).
func (s *StreamStats) ExcessKurtosis() float64 { return s.total.ExcessKurtosis() }

// NumBlocks reports how many blocks streamed into the sink.
func (s *StreamStats) NumBlocks() int { return len(s.blocks) }

// BlockTail returns the tail-window statistics of one block.
func (s *StreamStats) BlockTail(block int) stats.MeanStd {
	return s.blocks[block].acc.MeanStd()
}

// durationsPool recycles the flattened duration buffers DurationsMs
// returns, bounding steady-state allocation in callers that repeatedly
// flatten kernels of similar size.
var durationsPool = sync.Pool{
	New: func() any { s := make([]float64, 0, 1024); return &s },
}

// GetDurationsBuf leases a zero-length duration buffer from the pool.
func GetDurationsBuf() []float64 { return (*(durationsPool.Get().(*[]float64)))[:0] }

// PutDurationsBuf returns a buffer obtained from GetDurationsBuf (or an
// AppendDurationsMs result built on one) to the pool.
func PutDurationsBuf(buf []float64) {
	buf = buf[:0]
	durationsPool.Put(&buf)
}
