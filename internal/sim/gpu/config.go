// Package gpu models a CUDA-class accelerator in virtual time.
//
// The model reproduces exactly the observables the LATEST methodology
// depends on and nothing more:
//
//   - a grid of streaming multiprocessors (SMs) executing an iterative
//     arithmetic microbenchmark, each iteration bracketed by device-clock
//     timestamp reads quantised to the ~1 µs refresh rate of the CUDA
//     global timer;
//   - an SM frequency that follows a timeline of set-clocks requests, each
//     request incurring a CPU→device bus delay followed by a transition
//     period sampled from an architecture-specific latency model;
//   - wake-up behaviour (idle clocks until a sustained load arrives),
//     thermal inertia with thermal throttling, and a power cap;
//   - a device clock offset/drift against the host, so the IEEE 1588
//     synchronisation step of the methodology has real work to do.
//
// All activity is materialised lazily against a shared virtual clock,
// making campaigns deterministic for a given seed, and — crucially for
// validation — every frequency transition records its ground-truth
// completion time, which real hardware never reveals.
package gpu

import (
	"fmt"

	"golatest/internal/sim/clock"
)

// Transition describes one sampled frequency-change event: the command's
// travel time from host to device, and the on-device transition duration.
// The paper's "switching latency" corresponds to BusDelayNs + DurationNs
// (plus detection granularity); its "transition latency" to DurationNs.
type Transition struct {
	BusDelayNs int64
	DurationNs int64
}

// LatencyModel samples the DVFS behaviour of an architecture for a
// frequency change from initMHz to targetMHz. Implementations live in
// internal/hwprofile; the gpu package only requires determinism with
// respect to the supplied random stream.
type LatencyModel interface {
	Sample(initMHz, targetMHz float64, r *clock.Rand) Transition
}

// Config fully describes a simulated device. The zero value is not
// usable; construct configs via internal/hwprofile or fill the required
// fields (Name, SMCount, FreqsMHz, DefaultFreqMHz, Latency) manually and
// let Normalize supply defaults for the rest.
type Config struct {
	// Identity (Table I columns).
	Name         string  // e.g. "A100-SXM4"
	Architecture string  // e.g. "Ampere"
	Driver       string  // driver version string, reporting only
	SMCount      int     // number of streaming multiprocessors
	MemFreqMHz   float64 // memory clock at the default memory P-state

	// FreqsMHz lists the supported SM clock steps in ascending order.
	FreqsMHz []float64
	// DefaultFreqMHz is the clock applied at reset; IdleFreqMHz is the
	// clock the device falls back to after IdleTimeoutNs without load.
	DefaultFreqMHz float64
	IdleFreqMHz    float64
	IdleTimeoutNs  int64
	// WakeDelayNs is how long a kernel arriving on an idle device runs at
	// idle clocks before the programmed frequency is reached (§V wake-up
	// latency).
	WakeDelayNs int64

	// TimerQuantumNs is the device global-timer refresh period (the paper
	// footnote reports ≈1 µs for CUDA).
	TimerQuantumNs int64
	// ClockOffsetNs and ClockDriftPPM displace the device clock from the
	// host clock; the PTP phase must estimate and remove them.
	ClockOffsetNs int64
	ClockDriftPPM float64

	// SMSpeedSigma is the relative stddev of static per-SM speed
	// variation; IterJitterSigma the relative stddev of per-iteration
	// execution noise.
	SMSpeedSigma    float64
	IterJitterSigma float64
	// LaunchOverheadNs models the host-side kernel launch cost.
	LaunchOverheadNs int64

	// Latency is the architecture DVFS model (required).
	Latency LatencyModel
	// RampSteps selects the transition shape: 0 means the clock holds the
	// initial frequency for the whole transition and steps to the target
	// at completion; k > 0 inserts k intermediate linear ramp segments
	// (the "adapting" behaviour §IV warns about).
	RampSteps int

	// Thermal model: temperature relaxes toward AmbientC when idle and
	// toward SteadyTempAtMaxC·(f/fmax)² + AmbientC·(1−(f/fmax)²)… see
	// thermal.go. Throttling engages above ThermalLimitC and clamps the
	// clock to ThrottleClampMHz until the temperature falls below
	// ThermalLimitC − ThermalHysteresisC.
	AmbientC           float64
	SteadyTempAtMaxC   float64
	ThermalTauS        float64
	ThermalLimitC      float64
	ThermalHysteresisC float64
	ThrottleClampMHz   float64

	// IdlePowerW and MaxBusyPowerW parameterise the cube-law energy
	// meter (defaults 60 W and 400 W, an A100-class envelope).
	IdlePowerW    float64
	MaxBusyPowerW float64

	// PowerCapMHz, when positive, marks clocks above it as unsustainable:
	// after PowerCapDelayNs of cumulative load the device clamps to the
	// cap and raises the power-throttle reason. Zero disables the cap.
	PowerCapMHz     float64
	PowerCapDelayNs int64

	// Seed drives every stochastic element of this device.
	Seed uint64
}

// Normalize fills unset optional fields with defaults and validates the
// required ones. It returns the normalised copy.
func (c Config) Normalize() (Config, error) {
	if c.Name == "" {
		return c, fmt.Errorf("gpu: config missing Name")
	}
	if c.SMCount <= 0 {
		return c, fmt.Errorf("gpu: %s: SMCount must be positive, got %d", c.Name, c.SMCount)
	}
	if len(c.FreqsMHz) == 0 {
		return c, fmt.Errorf("gpu: %s: no frequency steps", c.Name)
	}
	for i := 1; i < len(c.FreqsMHz); i++ {
		if c.FreqsMHz[i] <= c.FreqsMHz[i-1] {
			return c, fmt.Errorf("gpu: %s: FreqsMHz not strictly ascending at index %d", c.Name, i)
		}
	}
	if c.FreqsMHz[0] <= 0 {
		return c, fmt.Errorf("gpu: %s: non-positive frequency step", c.Name)
	}
	if c.Latency == nil {
		return c, fmt.Errorf("gpu: %s: nil LatencyModel", c.Name)
	}
	if c.DefaultFreqMHz == 0 {
		c.DefaultFreqMHz = c.FreqsMHz[len(c.FreqsMHz)-1]
	}
	if !c.SupportsFreq(c.DefaultFreqMHz) {
		return c, fmt.Errorf("gpu: %s: default frequency %v not in step table", c.Name, c.DefaultFreqMHz)
	}
	if c.IdleFreqMHz == 0 {
		c.IdleFreqMHz = c.FreqsMHz[0]
	}
	if c.IdleTimeoutNs == 0 {
		c.IdleTimeoutNs = 50e6 // 50 ms
	}
	if c.WakeDelayNs == 0 {
		c.WakeDelayNs = 30e6 // 30 ms to reach programmed clocks from idle
	}
	if c.TimerQuantumNs == 0 {
		c.TimerQuantumNs = 1000
	}
	if c.SMSpeedSigma == 0 {
		c.SMSpeedSigma = 0.0015
	}
	if c.IterJitterSigma == 0 {
		// Arithmetic-only kernels on real SMs are extremely stable; a
		// quarter percent keeps neighbouring 15 MHz clock steps (≈1 %
		// apart at the top of the range) statistically separable, as the
		// paper's heatmaps show they were.
		c.IterJitterSigma = 0.0025
	}
	if c.LaunchOverheadNs == 0 {
		c.LaunchOverheadNs = 8000 // 8 µs launch overhead
	}
	if c.AmbientC == 0 {
		c.AmbientC = 30
	}
	if c.SteadyTempAtMaxC == 0 {
		c.SteadyTempAtMaxC = 68
	}
	if c.ThermalTauS == 0 {
		c.ThermalTauS = 25
	}
	if c.ThermalLimitC == 0 {
		c.ThermalLimitC = 90
	}
	if c.ThermalHysteresisC == 0 {
		c.ThermalHysteresisC = 5
	}
	if c.ThrottleClampMHz == 0 {
		c.ThrottleClampMHz = c.FreqsMHz[0]
	}
	if c.PowerCapDelayNs == 0 {
		c.PowerCapDelayNs = 100e6 // 100 ms sustained load
	}
	if c.IdlePowerW == 0 {
		c.IdlePowerW = 60
	}
	if c.MaxBusyPowerW == 0 {
		c.MaxBusyPowerW = 400
	}
	if c.MaxBusyPowerW < c.IdlePowerW {
		return c, fmt.Errorf("gpu: %s: MaxBusyPowerW %v below IdlePowerW %v",
			c.Name, c.MaxBusyPowerW, c.IdlePowerW)
	}
	return c, nil
}

// SupportsFreq reports whether f is one of the configured clock steps.
func (c *Config) SupportsFreq(f float64) bool {
	for _, step := range c.FreqsMHz {
		if step == f {
			return true
		}
	}
	return false
}

// MaxFreqMHz returns the highest supported clock step.
func (c *Config) MaxFreqMHz() float64 { return c.FreqsMHz[len(c.FreqsMHz)-1] }

// MinFreqMHz returns the lowest supported clock step.
func (c *Config) MinFreqMHz() float64 { return c.FreqsMHz[0] }
