package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimelineFreqAt(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1200)
	tl.add(200, 800)

	cases := []struct {
		t    int64
		want float64
	}{
		{-5, 1000}, // before first segment: first segment's clock
		{0, 1000},
		{99, 1000},
		{100, 1200},
		{150, 1200},
		{200, 800},
		{1 << 40, 800},
	}
	for _, c := range cases {
		if got := tl.freqAt(c.t); got != c.want {
			t.Errorf("freqAt(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTimelineAddSupersedes(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1200)
	tl.add(200, 1400)
	// A request landing at t=150 must drop the scheduled change at 200.
	tl.add(150, 900)
	if got := tl.freqAt(250); got != 900 {
		t.Fatalf("freqAt(250) = %v, want 900 (superseded)", got)
	}
	if got := tl.freqAt(120); got != 1200 {
		t.Fatalf("freqAt(120) = %v, want 1200", got)
	}
}

func TestTimelineAddNoopChange(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1000) // same clock: must not create a segment
	if len(tl.segs) != 1 {
		t.Fatalf("no-op add created segment: %v", tl.segs)
	}
}

func TestTimelineAddSameInstantReplaces(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1200)
	tl.add(100, 1300)
	if got := tl.freqAt(100); got != 1300 {
		t.Fatalf("freqAt(100) = %v, want 1300", got)
	}
	if len(tl.segs) != 2 {
		t.Fatalf("same-instant add duplicated segments: %v", tl.segs)
	}
}

func TestTimelineTruncateKeepsFirst(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1200)
	tl.truncateFrom(0)
	if len(tl.segs) != 1 || tl.segs[0].FreqMHz != 1000 {
		t.Fatalf("truncateFrom(0) = %v", tl.segs)
	}
}

func TestTimelineAddRampStepMode(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.addRamp(100, 500, 2000, 0)
	if got := tl.freqAt(499); got != 1000 {
		t.Fatalf("step mode: freqAt(499) = %v, want 1000 (hold init)", got)
	}
	if got := tl.freqAt(500); got != 2000 {
		t.Fatalf("step mode: freqAt(500) = %v, want 2000", got)
	}
}

func TestTimelineAddRampIntermediate(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.addRamp(0, 400, 2000, 3)
	// Steps at fracs 1/4, 2/4, 3/4: clocks 1250, 1500, 1750, then 2000.
	if got := tl.freqAt(150); got != 1250 {
		t.Fatalf("ramp: freqAt(150) = %v, want 1250", got)
	}
	if got := tl.freqAt(350); got != 1750 {
		t.Fatalf("ramp: freqAt(350) = %v, want 1750", got)
	}
	if got := tl.freqAt(400); got != 2000 {
		t.Fatalf("ramp: freqAt(400) = %v, want 2000", got)
	}
	// The clock must be monotone across the ramp for an upward change.
	prev := tl.freqAt(0)
	for ts := int64(0); ts <= 450; ts += 10 {
		f := tl.freqAt(ts)
		if f < prev {
			t.Fatalf("ramp not monotone at t=%d: %v < %v", ts, f, prev)
		}
		prev = f
	}
}

func TestTimelineAddRampDegenerate(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.addRamp(200, 200, 1500, 4) // zero-duration transition
	if got := tl.freqAt(200); got != 1500 {
		t.Fatalf("degenerate ramp: freqAt(200) = %v, want 1500", got)
	}
}

func TestCursorMatchesFreqAt(t *testing.T) {
	tl := newTimeline(0, 1000)
	tl.add(100, 1100)
	tl.add(250, 900)
	tl.add(600, 1500)
	cur := tl.cursor()
	for ts := int64(0); ts < 700; ts += 7 {
		f, end := cur.freqAt(ts)
		if want := tl.freqAt(ts); f != want {
			t.Fatalf("cursor freq at %d = %v, want %v", ts, f, want)
		}
		if end <= ts {
			t.Fatalf("cursor end %d not after t %d", end, ts)
		}
	}
}

func TestCursorSurvivesTimelineGrowth(t *testing.T) {
	tl := newTimeline(0, 1000)
	cur := tl.cursor()
	if f, _ := cur.freqAt(50); f != 1000 {
		t.Fatalf("initial freq = %v", f)
	}
	tl.add(100, 1200)
	if f, _ := cur.freqAt(150); f != 1200 {
		t.Fatalf("freq after growth = %v, want 1200", f)
	}
}

// Property: for any sequence of add calls with increasing times, freqAt
// always reports the frequency of the latest segment at or before t, and
// segment starts stay strictly increasing.
func TestTimelineOrderInvariantProperty(t *testing.T) {
	f := func(deltas []uint16, freqs []uint16) bool {
		tl := newTimeline(0, 500)
		tm := int64(0)
		n := len(deltas)
		if len(freqs) < n {
			n = len(freqs)
		}
		for i := 0; i < n; i++ {
			tm += int64(deltas[i]) + 1
			tl.add(tm, 100+float64(freqs[i]%2000))
		}
		for i := 1; i < len(tl.segs); i++ {
			if tl.segs[i].StartNs <= tl.segs[i-1].StartNs {
				return false
			}
			if tl.segs[i].FreqMHz == tl.segs[i-1].FreqMHz {
				return false // adjacent duplicates must be merged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCursorFinalSegmentEnd(t *testing.T) {
	tl := newTimeline(0, 1000)
	cur := tl.cursor()
	_, end := cur.freqAt(10)
	if end != math.MaxInt64 {
		t.Fatalf("final segment end = %d, want MaxInt64", end)
	}
}
