package gpu

import (
	"math"
	"testing"
	"time"

	"golatest/internal/sim/clock"
)

// fixedModel is a deterministic latency model for tests.
type fixedModel struct {
	bus, dur int64
}

func (m fixedModel) Sample(init, target float64, r *clock.Rand) Transition {
	return Transition{BusDelayNs: m.bus, DurationNs: m.dur}
}

func testConfig() Config {
	return Config{
		Name:           "test-gpu",
		Architecture:   "Test",
		SMCount:        4,
		MemFreqMHz:     1215,
		FreqsMHz:       []float64{300, 600, 900, 1200, 1500},
		DefaultFreqMHz: 1200,
		Latency:        fixedModel{bus: 50_000, dur: 10_000_000}, // 50 µs + 10 ms
		Seed:           42,
	}
}

func newTestDevice(t *testing.T, cfg Config) (*Device, *clock.Clock) {
	t.Helper()
	clk := clock.New()
	d, err := New(cfg, clk)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clk
}

func TestNewValidation(t *testing.T) {
	clk := clock.New()
	bad := []Config{
		{},                      // no name
		{Name: "x"},             // no SMs
		{Name: "x", SMCount: 1}, // no freqs
		{Name: "x", SMCount: 1, FreqsMHz: []float64{100, 100}, Latency: fixedModel{}},                      // not ascending
		{Name: "x", SMCount: 1, FreqsMHz: []float64{-5, 100}, Latency: fixedModel{}},                       // negative step
		{Name: "x", SMCount: 1, FreqsMHz: []float64{100, 200}},                                             // nil model
		{Name: "x", SMCount: 1, FreqsMHz: []float64{100, 200}, DefaultFreqMHz: 150, Latency: fixedModel{}}, // default off-table
	}
	for i, cfg := range bad {
		if _, err := New(cfg, clk); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(testConfig(), clk); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDefaultsFilled(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	cfg := d.Config()
	if cfg.TimerQuantumNs != 1000 {
		t.Errorf("TimerQuantumNs = %d, want 1000", cfg.TimerQuantumNs)
	}
	if cfg.IdleFreqMHz != 300 {
		t.Errorf("IdleFreqMHz = %v, want 300 (lowest step)", cfg.IdleFreqMHz)
	}
	if cfg.ThermalLimitC != 90 || cfg.AmbientC != 30 {
		t.Errorf("thermal defaults: %+v", cfg)
	}
}

func TestSetFrequencyUnsupported(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	if _, err := d.SetFrequency(700); err == nil {
		t.Fatal("unsupported clock accepted")
	}
}

func TestSetFrequencyGroundTruth(t *testing.T) {
	d, clk := newTestDevice(t, testConfig())
	clk.Advance(1_000_000)
	inj, err := d.SetFrequency(900)
	if err != nil {
		t.Fatalf("SetFrequency: %v", err)
	}
	if inj.RequestNs != 1_000_000 {
		t.Errorf("RequestNs = %d", inj.RequestNs)
	}
	if inj.ApplyNs != 1_050_000 {
		t.Errorf("ApplyNs = %d, want request+50µs", inj.ApplyNs)
	}
	if inj.CompleteNs != 11_050_000 {
		t.Errorf("CompleteNs = %d, want apply+10ms", inj.CompleteNs)
	}
	if inj.InitMHz != 1200 || inj.TargetMHz != 900 {
		t.Errorf("Init/Target = %v/%v", inj.InitMHz, inj.TargetMHz)
	}
	if got := inj.SwitchingLatencyNs(); got != 10_050_000 {
		t.Errorf("SwitchingLatencyNs = %d", got)
	}
	// The clock holds the initial frequency through the transition.
	clk.AdvanceTo(inj.CompleteNs - 1)
	if f := d.CurrentFreqMHz(); f != 1200 {
		t.Errorf("mid-transition clock = %v, want 1200", f)
	}
	clk.AdvanceTo(inj.CompleteNs)
	if f := d.CurrentFreqMHz(); f != 900 {
		t.Errorf("post-transition clock = %v, want 900", f)
	}
	if d.SetFreqMHz() != 900 {
		t.Errorf("SetFreqMHz = %v", d.SetFreqMHz())
	}
}

func TestSetFrequencyNoopCompletesOnReceipt(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	inj, err := d.SetFrequency(1200) // already effective
	if err != nil {
		t.Fatal(err)
	}
	if inj.CompleteNs != inj.ApplyNs {
		t.Fatalf("no-op change: complete %d != apply %d", inj.CompleteNs, inj.ApplyNs)
	}
}

func TestInjectionsAccumulate(t *testing.T) {
	d, clk := newTestDevice(t, testConfig())
	d.SetFrequency(900)
	clk.Advance(50_000_000)
	d.SetFrequency(1500)
	injs := d.Injections()
	if len(injs) != 2 {
		t.Fatalf("len(Injections) = %d", len(injs))
	}
	last, ok := d.LastInjection()
	if !ok || last.TargetMHz != 1500 {
		t.Fatalf("LastInjection = %+v, %v", last, ok)
	}
	if injs[1].InitMHz != 900 {
		t.Fatalf("second injection init = %v, want 900", injs[1].InitMHz)
	}
}

func TestKernelDurationScalesWithFrequency(t *testing.T) {
	cfg := testConfig()
	cfg.IterJitterSigma = 1e-9 // effectively deterministic
	cfg.SMSpeedSigma = 1e-9
	cfg.IdleTimeoutNs = int64(10 * time.Second) // keep the device warm across runs
	d, clk := newTestDevice(t, cfg)

	run := func(freq float64) float64 {
		inj, err := d.SetFrequency(freq)
		if err != nil {
			t.Fatal(err)
		}
		clk.AdvanceTo(inj.CompleteNs + int64(100*time.Millisecond)) // settle well past wake
		k, err := d.Launch(KernelSpec{Iters: 50, CyclesPerIter: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		d.Synchronize()
		durs := k.DurationsMs()
		var sum float64
		for _, v := range durs[len(durs)/2:] { // skip any wake residue
			sum += v
		}
		return sum / float64(len(durs)/2)
	}

	// Keep the device warm with a dummy kernel first.
	if _, err := d.Launch(KernelSpec{Iters: 400, CyclesPerIter: 200_000}); err != nil {
		t.Fatal(err)
	}
	d.Synchronize()

	at600 := run(600)
	at1200 := run(1200)
	ratio := at600 / at1200
	if math.Abs(ratio-2) > 0.05 {
		t.Fatalf("iteration time ratio 600/1200 MHz = %v, want ≈2", ratio)
	}
}

func TestKernelTimestampsQuantised(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	k, err := d.Launch(KernelSpec{Iters: 20, CyclesPerIter: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	for _, block := range k.Samples() {
		for _, it := range block {
			if it.StartNs%1000 != 0 || it.EndNs%1000 != 0 {
				t.Fatalf("timestamp not quantised: %+v", it)
			}
		}
	}
}

func TestKernelTimestampsMonotone(t *testing.T) {
	d, clk := newTestDevice(t, testConfig())
	k, err := d.Launch(KernelSpec{Iters: 300, CyclesPerIter: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	// Fire a frequency change mid-kernel to stress segment crossings.
	clk.Advance(2_000_000)
	d.SetFrequency(600)
	d.Synchronize()
	for smIdx, block := range k.Samples() {
		prevEnd := int64(-1)
		for i, it := range block {
			if it.EndNs < it.StartNs {
				t.Fatalf("SM %d iter %d: end before start: %+v", smIdx, i, it)
			}
			if it.StartNs < prevEnd {
				t.Fatalf("SM %d iter %d: overlaps previous (start %d < prev end %d)",
					smIdx, i, it.StartNs, prevEnd)
			}
			prevEnd = it.EndNs
		}
	}
}

func TestIterationSpanningTransitionBlends(t *testing.T) {
	cfg := testConfig()
	cfg.IterJitterSigma = 1e-9
	cfg.SMSpeedSigma = 1e-9
	cfg.WakeDelayNs = 1 // effectively disable wake effects
	cfg.Latency = fixedModel{bus: 0, dur: 0}
	d, clk := newTestDevice(t, cfg)

	// Warm: run at 1200, then mid-kernel drop to 600 instantaneously.
	k, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 240_000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Nominal iteration at 1200 MHz: 240000/1200 = 200 µs. Change the
	// clock 1 ms after the (launch-overhead delayed) start.
	clk.Advance(1_000_000)
	d.SetFrequency(600)
	d.Synchronize()

	durs := k.DurationsMs()
	// Early iterations ≈ 0.2 ms, late ≈ 0.4 ms, with at most one blended
	// iteration in between.
	if durs[0] < 0.19 || durs[0] > 0.21 {
		t.Fatalf("first iteration %v ms, want ≈0.2", durs[0])
	}
	last := durs[len(durs)-1]
	if last < 0.39 || last > 0.41 {
		t.Fatalf("last iteration %v ms, want ≈0.4", last)
	}
	// Find the change: total time must be conserved (no lost cycles).
	fast, slow, blended := 0, 0, 0
	for _, dms := range durs {
		switch {
		case dms < 0.21:
			fast++
		case dms > 0.39:
			slow++
		default:
			blended++
		}
	}
	if blended > 1 {
		t.Fatalf("%d blended iterations, want ≤1", blended)
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("fast=%d slow=%d: transition not visible", fast, slow)
	}
}

func TestWakeUpSlowsFirstIterations(t *testing.T) {
	cfg := testConfig()
	cfg.WakeDelayNs = 5_000_000 // 5 ms at idle clocks
	d, _ := newTestDevice(t, cfg)

	k, err := d.Launch(KernelSpec{Iters: 200, CyclesPerIter: 120_000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	durs := k.DurationsMs()
	// At idle clocks (300 MHz) an iteration takes 4× its 1200 MHz time.
	if durs[0] < 3*durs[len(durs)-1] {
		t.Fatalf("first iteration %v not slowed vs last %v", durs[0], durs[len(durs)-1])
	}
	// A second kernel launched immediately is warm: no wake penalty.
	k2, err := d.Launch(KernelSpec{Iters: 20, CyclesPerIter: 120_000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	d2 := k2.DurationsMs()
	if d2[0] > 1.5*d2[len(d2)-1] {
		t.Fatalf("warm kernel first iteration %v slowed (last %v)", d2[0], d2[len(d2)-1])
	}
}

func TestDeviceTimeRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.ClockOffsetNs = 123_456_789
	cfg.ClockDriftPPM = 12
	d, _ := newTestDevice(t, cfg)
	for _, hostNs := range []int64{0, 1_000_000, 987_654_321, 1 << 40} {
		dev := d.DeviceTimeAt(hostNs)
		back := d.HostTimeFor(dev)
		if diff := back - hostNs; diff < -2000 || diff > 2000 {
			t.Fatalf("round trip error %d ns at host %d", diff, hostNs)
		}
	}
}

func TestDeviceTimeQuantised(t *testing.T) {
	cfg := testConfig()
	cfg.ClockOffsetNs = 777
	d, _ := newTestDevice(t, cfg)
	if got := d.DeviceTimeAt(1234); got%1000 != 0 {
		t.Fatalf("DeviceTimeAt not quantised: %d", got)
	}
}

func TestSamplesBeforeSyncPanics(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	k, err := d.Launch(KernelSpec{Iters: 1, CyclesPerIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Samples before Synchronize did not panic")
		}
	}()
	k.Samples()
}

func TestLaunchValidation(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	if _, err := d.Launch(KernelSpec{Iters: 0, CyclesPerIter: 1}); err == nil {
		t.Error("Iters=0 accepted")
	}
	if _, err := d.Launch(KernelSpec{Iters: 1, CyclesPerIter: 0}); err == nil {
		t.Error("CyclesPerIter=0 accepted")
	}
	if _, err := d.Launch(KernelSpec{Iters: 1, CyclesPerIter: 1, Blocks: 99}); err == nil {
		t.Error("Blocks beyond SMCount accepted")
	}
}

func TestSynchronizeAdvancesClock(t *testing.T) {
	d, clk := newTestDevice(t, testConfig())
	before := clk.Now()
	_, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	if clk.Now() <= before {
		t.Fatal("Synchronize did not advance the host clock")
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d after sync", d.Pending())
	}
}

func TestThermalHeatsAndCools(t *testing.T) {
	cfg := testConfig()
	cfg.ThermalTauS = 1 // fast dynamics for the test
	d, clk := newTestDevice(t, cfg)
	if temp := d.Temperature(); temp != 30 {
		t.Fatalf("initial temperature %v, want ambient 30", temp)
	}
	// A long kernel heats the die.
	_, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 60_000_000, Blocks: 1}) // ~5 s
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	hot := d.Temperature()
	if hot < 50 {
		t.Fatalf("temperature after 5 s load = %v, want > 50", hot)
	}
	// Idle cooling brings it back toward ambient.
	clk.Sleep(20 * time.Second)
	cool := d.Temperature()
	if cool >= hot || cool > 31 {
		t.Fatalf("temperature after cooling = %v (was %v)", cool, hot)
	}
}

func TestThermalThrottleEngagesAndRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.ThermalTauS = 1
	cfg.ThermalLimitC = 55
	cfg.SteadyTempAtMaxC = 80
	cfg.ThrottleClampMHz = 300
	d, clk := newTestDevice(t, cfg)

	_, err := d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 60_000_000, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	if !d.ThrottleReasons().Has(ThrottleThermal) {
		t.Fatalf("thermal throttle not engaged at %v °C", d.Temperature())
	}
	if f := d.CurrentFreqMHz(); f != 300 {
		t.Fatalf("throttled clock = %v, want clamp 300", f)
	}
	// Cooling through the hysteresis band releases the throttle.
	clk.Sleep(30 * time.Second)
	if d.ThrottleReasons().Has(ThrottleThermal) {
		t.Fatalf("throttle still engaged at %v °C", d.Temperature())
	}
	if f := d.CurrentFreqMHz(); f != 1200 {
		t.Fatalf("post-recovery clock = %v, want 1200", f)
	}
}

func TestPowerCapThrottle(t *testing.T) {
	cfg := testConfig()
	cfg.PowerCapMHz = 900
	cfg.PowerCapDelayNs = int64(50 * time.Millisecond)
	d, clk := newTestDevice(t, cfg)

	inj, err := d.SetFrequency(1500)
	if err != nil {
		t.Fatal(err)
	}
	clk.AdvanceTo(inj.CompleteNs)
	_, err = d.Launch(KernelSpec{Iters: 100, CyclesPerIter: 3_000_000, Blocks: 1}) // ~200 ms at 1.5 GHz
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	if !d.ThrottleReasons().Has(ThrottlePower) {
		t.Fatal("power throttle not engaged above cap")
	}
	if f := d.CurrentFreqMHz(); f != 900 {
		t.Fatalf("power-capped clock = %v, want 900", f)
	}
	// Programming a clock at or below the cap releases the latch.
	if _, err := d.SetFrequency(600); err != nil {
		t.Fatal(err)
	}
	if d.ThrottleReasons().Has(ThrottlePower) {
		t.Fatal("power throttle not released after lowering clocks")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() []float64 {
		d, clk := newTestDevice(t, testConfig())
		clk.Advance(5_000)
		k, err := d.Launch(KernelSpec{Iters: 50, CyclesPerIter: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		clk.Advance(1_000_000)
		d.SetFrequency(600)
		d.Synchronize()
		return k.DurationsMs()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBlocksSubsetRecorded(t *testing.T) {
	d, _ := newTestDevice(t, testConfig())
	k, err := d.Launch(KernelSpec{Iters: 5, CyclesPerIter: 10_000, Blocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	d.Synchronize()
	if got := len(k.Samples()); got != 2 {
		t.Fatalf("recorded blocks = %d, want 2", got)
	}
}

func TestNominalIterNs(t *testing.T) {
	s := KernelSpec{Iters: 1, CyclesPerIter: 120_000}
	if got := s.NominalIterNs(1200); got != 100_000 {
		t.Fatalf("NominalIterNs = %v, want 100000", got)
	}
}
