package gpu

import "sort"

// segment is one piece of the device frequency timeline: from StartNs
// (host timebase) until the next segment's start, the SM clock is FreqMHz.
type segment struct {
	StartNs int64
	FreqMHz float64
}

// timeline is the append-mostly list of frequency segments. It always
// contains at least one segment (the reset clock at time zero) and is
// strictly ordered by StartNs.
type timeline struct {
	segs []segment
}

func newTimeline(startNs int64, freqMHz float64) *timeline {
	return &timeline{segs: []segment{{StartNs: startNs, FreqMHz: freqMHz}}}
}

// freqAt returns the frequency in effect at host time t. Times before the
// first segment report the first segment's frequency.
func (tl *timeline) freqAt(t int64) float64 {
	i := tl.indexAt(t)
	return tl.segs[i].FreqMHz
}

// indexAt returns the index of the segment covering host time t.
func (tl *timeline) indexAt(t int64) int {
	// Binary search for the first segment starting after t, then step back.
	i := sort.Search(len(tl.segs), func(i int) bool { return tl.segs[i].StartNs > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// truncateFrom removes every segment starting at or after t. The first
// segment is never removed, keeping the timeline non-empty.
func (tl *timeline) truncateFrom(t int64) {
	keep := len(tl.segs)
	for keep > 1 && tl.segs[keep-1].StartNs >= t {
		keep--
	}
	tl.segs = tl.segs[:keep]
}

// add inserts a segment at time t with the given frequency, replacing any
// scheduled segments at or after t (a new clocks request supersedes an
// in-flight one — real hardware leaves this case undefined; the simulator
// chooses last-writer-wins, the only behaviour a runtime can plan around).
func (tl *timeline) add(t int64, freqMHz float64) {
	tl.truncateFrom(t)
	last := tl.segs[len(tl.segs)-1]
	if last.FreqMHz == freqMHz {
		return // no-op change; avoid zero-width duplicate segments
	}
	if last.StartNs == t {
		tl.segs[len(tl.segs)-1].FreqMHz = freqMHz
		return
	}
	tl.segs = append(tl.segs, segment{StartNs: t, FreqMHz: freqMHz})
}

// addRamp schedules a transition from the frequency in effect at
// applyNs toward targetMHz completing at completeNs. With steps == 0 the
// clock holds until completeNs and then jumps; with k > 0 it passes
// through k intermediate evenly spaced frequencies, emulating hardware
// that "adapts" through the transition (§IV).
func (tl *timeline) addRamp(applyNs, completeNs int64, targetMHz float64, steps int) {
	if completeNs <= applyNs {
		tl.add(applyNs, targetMHz)
		return
	}
	initMHz := tl.freqAt(applyNs)
	tl.truncateFrom(applyNs)
	if steps > 0 && initMHz != targetMHz {
		span := completeNs - applyNs
		for s := 1; s <= steps; s++ {
			frac := float64(s) / float64(steps+1)
			t := applyNs + int64(frac*float64(span))
			f := initMHz + frac*(targetMHz-initMHz)
			tl.add(t, f)
		}
	}
	tl.add(completeNs, targetMHz)
}

// cursor supports amortised-O(1) sequential frequency lookups for the
// kernel materialisation loop, which walks time monotonically.
type cursor struct {
	tl  *timeline
	idx int
}

func (tl *timeline) cursor() cursor { return cursor{tl: tl} }

// freqAt returns the frequency at t and the host time at which the
// current segment ends (the next change boundary), with endNs = maxInt64
// for the final segment. t must be non-decreasing across calls.
func (c *cursor) freqAt(t int64) (freqMHz float64, endNs int64) {
	segs := c.tl.segs
	// The timeline may have grown since the last call; advancing from the
	// remembered index keeps the scan amortised constant-time.
	for c.idx+1 < len(segs) && segs[c.idx+1].StartNs <= t {
		c.idx++
	}
	// A truncation may have invalidated the index; clamp and re-seek.
	if c.idx >= len(segs) {
		c.idx = len(segs) - 1
	}
	if segs[c.idx].StartNs > t {
		c.idx = c.tl.indexAt(t)
	}
	end := int64(1<<63 - 1)
	if c.idx+1 < len(segs) {
		end = segs[c.idx+1].StartNs
	}
	return segs[c.idx].FreqMHz, end
}
