package gpu

import "math"

// ThrottleReason bits mirror the NVML clocks-throttle-reasons bitmask the
// benchmark polls every five passes (§VI).
type ThrottleReason uint64

const (
	// ThrottleNone means the device runs at the programmed clocks.
	ThrottleNone ThrottleReason = 0
	// ThrottleThermal indicates the thermal limit engaged; the benchmark
	// discards recent measurements and backs off to let the GPU cool.
	ThrottleThermal ThrottleReason = 1 << iota
	// ThrottlePower indicates the power cap engaged; the requested clocks
	// cannot be sustained and the frequency pair must be skipped.
	ThrottlePower
)

// Has reports whether all bits of q are set in r.
func (r ThrottleReason) Has(q ThrottleReason) bool { return r&q == q }

// String renders the reason set for logs.
func (r ThrottleReason) String() string {
	switch {
	case r == ThrottleNone:
		return "none"
	case r.Has(ThrottleThermal) && r.Has(ThrottlePower):
		return "thermal|power"
	case r.Has(ThrottleThermal):
		return "thermal"
	case r.Has(ThrottlePower):
		return "power"
	default:
		return "unknown"
	}
}

// thermalState integrates a first-order thermal model: the die relaxes
// exponentially toward a load-dependent steady-state temperature with
// time constant ThermalTauS.
type thermalState struct {
	tempC        float64
	lastUpdateNs int64
	// busyPowerAccumNs counts cumulative load time above the power cap,
	// driving the power-throttle latch.
	busyAboveCapNs int64
}

// steadyTemp returns the equilibrium temperature when the device runs
// continuously at freqMHz (busy) or sits idle.
func (c *Config) steadyTemp(freqMHz float64, busy bool) float64 {
	if !busy {
		return c.AmbientC
	}
	ratio := freqMHz / c.MaxFreqMHz()
	return c.AmbientC + (c.SteadyTempAtMaxC-c.AmbientC)*ratio*ratio
}

// evolve advances the thermal state from its last update to nowNs,
// assuming the device was busy at freqMHz (or idle) throughout.
func (ts *thermalState) evolve(c *Config, nowNs int64, freqMHz float64, busy bool) {
	dt := nowNs - ts.lastUpdateNs
	if dt <= 0 {
		return
	}
	steady := c.steadyTemp(freqMHz, busy)
	alpha := math.Exp(-float64(dt) / (c.ThermalTauS * 1e9))
	ts.tempC = steady + (ts.tempC-steady)*alpha
	ts.lastUpdateNs = nowNs
	if busy && c.PowerCapMHz > 0 && freqMHz > c.PowerCapMHz {
		ts.busyAboveCapNs += dt
	}
	if !busy {
		// Idle periods bleed off the power-cap accumulator at the same
		// rate it charges, modelling capacitor-like power averaging.
		ts.busyAboveCapNs -= dt
		if ts.busyAboveCapNs < 0 {
			ts.busyAboveCapNs = 0
		}
	}
}
