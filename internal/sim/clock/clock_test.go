package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("New clock Now() = %d, want 0", got)
	}
}

func TestNewAt(t *testing.T) {
	c := NewAt(42)
	if got := c.Now(); got != 42 {
		t.Fatalf("NewAt(42).Now() = %d, want 42", got)
	}
}

func TestNewAtNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAt(-1) did not panic")
		}
	}()
	NewAt(-1)
}

func TestAdvanceAccumulates(t *testing.T) {
	c := New()
	c.Advance(10)
	c.Advance(5)
	if got := c.Now(); got != 15 {
		t.Fatalf("Now() after Advance(10)+Advance(5) = %d, want 15", got)
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	c := NewAt(7)
	c.Advance(0)
	if got := c.Now(); got != 7 {
		t.Fatalf("Now() after Advance(0) = %d, want 7", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-1)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	c.AdvanceTo(100) // same time: no-op
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() after no-op AdvanceTo = %d, want 100", got)
	}
}

func TestAdvanceToPastPanics(t *testing.T) {
	c := NewAt(50)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(49)
}

func TestSleep(t *testing.T) {
	c := New()
	c.Sleep(3 * time.Microsecond)
	if got := c.Now(); got != 3000 {
		t.Fatalf("Now() after Sleep(3us) = %d, want 3000", got)
	}
}

func TestSince(t *testing.T) {
	c := New()
	t0 := c.Now()
	c.Advance(250)
	if got := c.Since(t0); got != 250 {
		t.Fatalf("Since = %d, want 250", got)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Any sequence of non-negative advances keeps the clock monotonically
	// non-decreasing and equal to the running sum.
	f := func(steps []uint16) bool {
		c := New()
		var sum int64
		prev := c.Now()
		for _, s := range steps {
			c.Advance(int64(s))
			sum += int64(s)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(1, 2)
	b := NewRand(1, 2)
	for i := 0; i < 100; i++ {
		if x, y := a.Float64(), b.Float64(); x != y {
			t.Fatalf("draw %d differs: %v vs %v", i, x, y)
		}
	}
}

func TestRandChildIndependence(t *testing.T) {
	// Children with distinct tags must differ from each other, and drawing
	// from one child must not perturb its sibling.
	parent := NewRand(3, 4)
	c1 := parent.Child(1)
	c2 := parent.Child(2)

	parent2 := NewRand(3, 4)
	d1 := parent2.Child(1)
	d2 := parent2.Child(2)
	// Draw heavily from d1 before touching d2.
	for i := 0; i < 1000; i++ {
		d1.Float64()
	}
	got := d2.Float64()
	want := c2.Float64()
	if got != want {
		t.Fatalf("sibling stream perturbed: got %v want %v", got, want)
	}
	if c1.Float64() == c2.Float64() {
		t.Fatal("distinct child tags produced identical draws (suspicious)")
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRand(5, 6)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 3)
		if v < 2 || v >= 3 {
			t.Fatalf("Uniform(2,3) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(7, 8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance = %v, want ~4", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(9, 10)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(11, 12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(13, 14)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRand(15, 16)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.PickWeighted(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("index 0 frequency = %v, want ~0.25", frac0)
	}
}

func TestPickWeightedDegenerate(t *testing.T) {
	r := NewRand(17, 18)
	if got := r.PickWeighted([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero weights: got %d, want 0", got)
	}
	if got := r.PickWeighted([]float64{-1, 2}); got != 1 {
		t.Fatalf("negative weight skipped: got %d, want 1", got)
	}
}

func TestIntNRange(t *testing.T) {
	r := NewRand(19, 20)
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d out of range", v)
		}
	}
}
