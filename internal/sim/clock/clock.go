// Package clock provides the virtual-time base of the simulation.
//
// Every component of the simulated platform (host CPU, GPU devices, the
// PTP synchroniser) shares a single Clock. Nothing in the simulator ever
// sleeps in wall time: "sleeping" advances the virtual clock, and device
// activity is materialised lazily against it. This keeps full benchmark
// campaigns deterministic and fast regardless of how much simulated time
// they span.
package clock

import (
	"fmt"
	"time"
)

// Clock is a monotonic virtual clock with nanosecond resolution.
//
// A Clock is not safe for concurrent mutation; the simulation is driven by
// a single host goroutine, mirroring the single CPU thread that drives the
// real LATEST benchmark. Analysis code may fan out across goroutines, but
// only after all time-advancing calls have completed.
type Clock struct {
	now int64 // nanoseconds since simulation start
}

// New returns a clock positioned at time zero.
func New() *Clock { return &Clock{} }

// NewAt returns a clock positioned at the given nanosecond timestamp.
// Starting simulations at a nonzero epoch helps tests catch code that
// conflates "zero time" with "unset".
func NewAt(ns int64) *Clock {
	if ns < 0 {
		panic(fmt.Sprintf("clock: negative epoch %d", ns))
	}
	return &Clock{now: ns}
}

// Now reports the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by d nanoseconds.
// It panics if d is negative: virtual time, like real time, is monotonic,
// and a negative advance always indicates a simulation bug.
func (c *Clock) Advance(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative advance %d", d))
	}
	c.now += d
}

// AdvanceTo moves the clock forward to the absolute timestamp t.
// Moving to the past panics; moving to the present is a no-op.
func (c *Clock) AdvanceTo(t int64) {
	if t < c.now {
		panic(fmt.Sprintf("clock: AdvanceTo(%d) would rewind from %d", t, c.now))
	}
	c.now = t
}

// Sleep advances the clock by the given duration, emulating usleep on the
// benchmark's host thread.
func (c *Clock) Sleep(d time.Duration) { c.Advance(int64(d)) }

// Since reports the elapsed virtual nanoseconds since the timestamp t.
func (c *Clock) Since(t int64) int64 { return c.now - t }
