package clock

import (
	"math"
	"math/rand/v2"
)

// Rand is the simulator's deterministic random stream.
//
// Each independently evolving component (one per GPU device, one per link,
// one per workload) derives its own child stream so that adding draws in
// one component never perturbs another — a requirement for the
// measured-vs-injected validation tests, which re-run campaigns with the
// same seed and expect bit-identical device behaviour.
type Rand struct {
	src *rand.Rand
	pcg *rand.PCG // retained so ChildInto can re-seed in place
}

// NewRand returns a stream seeded from the two 64-bit words.
// The same (seed1, seed2) always produces the same draw sequence.
func NewRand(seed1, seed2 uint64) *Rand {
	pcg := rand.NewPCG(seed1, seed2)
	return &Rand{src: rand.New(pcg), pcg: pcg}
}

// SplitMix64 is the SplitMix64 finaliser: it spreads structured inputs
// (small consecutive tags, float bit patterns) into well-separated
// 64-bit values. It is the one place this mixing lives; seed-derivation
// code elsewhere must call it rather than re-inline the constants.
func SplitMix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// childSeeds derives the PCG seed words of the child stream labelled by
// tag, advancing the parent by one draw. The tag is mixed through
// SplitMix64 so that small consecutive tags give well-separated seeds.
func (r *Rand) childSeeds(tag uint64) (uint64, uint64) {
	z := SplitMix64(tag)
	return r.src.Uint64() ^ z, z
}

// Child derives an independent stream labelled by the given tag.
// Distinct tags yield streams that do not share state with the parent or
// with each other.
func (r *Rand) Child(tag uint64) *Rand {
	s1, s2 := r.childSeeds(tag)
	return NewRand(s1, s2)
}

// ChildInto re-seeds scratch to the exact draw sequence Child(tag) would
// return, without allocating. It exists for the simulator's per-kernel
// and per-SM streams, which the hot materialisation path derives
// thousands of times per campaign; a caller-owned scratch stream absorbs
// them all. scratch must come from NewRand and must not be the receiver.
func (r *Rand) ChildInto(scratch *Rand, tag uint64) *Rand {
	s1, s2 := r.childSeeds(tag)
	scratch.pcg.Seed(s1, s2)
	return scratch
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// IntN returns a uniform integer in [0, n).
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Normal returns a draw from the normal distribution N(mean, sigma²).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)); used for heavy-tailed driver
// latencies where occasional large values must remain positive.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Exp returns an exponential draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// PickWeighted returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise index 0 is returned.
func (r *Rand) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
