package clock

import (
	"math"
	"math/rand/v2"
)

// Rand is the simulator's deterministic random stream.
//
// Each independently evolving component (one per GPU device, one per link,
// one per workload) derives its own child stream so that adding draws in
// one component never perturbs another — a requirement for the
// measured-vs-injected validation tests, which re-run campaigns with the
// same seed and expect bit-identical device behaviour.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a stream seeded from the two 64-bit words.
// The same (seed1, seed2) always produces the same draw sequence.
func NewRand(seed1, seed2 uint64) *Rand {
	return &Rand{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Child derives an independent stream labelled by the given tag.
// Distinct tags yield streams that do not share state with the parent or
// with each other.
func (r *Rand) Child(tag uint64) *Rand {
	// Mix the tag through SplitMix64 so that small consecutive tags give
	// well-separated PCG seeds.
	z := tag + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &Rand{src: rand.New(rand.NewPCG(r.src.Uint64()^z, z))}
}

// Float64 returns a uniform draw in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// IntN returns a uniform integer in [0, n).
func (r *Rand) IntN(n int) int { return r.src.IntN(n) }

// Normal returns a draw from the normal distribution N(mean, sigma²).
func (r *Rand) Normal(mean, sigma float64) float64 {
	return mean + sigma*r.src.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma²)); used for heavy-tailed driver
// latencies where occasional large values must remain positive.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Exp returns an exponential draw with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.src.Float64() < p }

// PickWeighted returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a positive
// sum; otherwise index 0 is returned.
func (r *Rand) PickWeighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
