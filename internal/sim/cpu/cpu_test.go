package cpu

import (
	"math"
	"testing"

	"golatest/internal/sim/clock"
)

func testConfig() Config {
	return Config{
		Name:       "test-core",
		FreqsMHz:   []float64{1200, 1800, 2400, 3000},
		Transition: UniformTransition{BaseNs: 20_000, JitterNs: 5_000, UpPenaltyNs: 30_000},
		Seed:       11,
	}
}

func newCore(t *testing.T, cfg Config) (*Core, *clock.Clock) {
	t.Helper()
	clk := clock.New()
	c, err := New(cfg, clk)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, clk
}

func TestNewValidation(t *testing.T) {
	clk := clock.New()
	bad := []Config{
		{},
		{Name: "x"},
		{Name: "x", FreqsMHz: []float64{100}}, // nil transition
		{Name: "x", FreqsMHz: []float64{200, 100}, Transition: UniformTransition{}},
		{Name: "x", FreqsMHz: []float64{100, 200}, DefaultFreqMHz: 150, Transition: UniformTransition{}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, clk); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDefaultFrequencyIsMax(t *testing.T) {
	c, _ := newCore(t, testConfig())
	if f := c.CurrentFreqMHz(); f != 3000 {
		t.Fatalf("default frequency = %v, want 3000", f)
	}
}

func TestSetFrequencyTransition(t *testing.T) {
	c, clk := newCore(t, testConfig())
	inj, err := c.SetFrequency(1200)
	if err != nil {
		t.Fatal(err)
	}
	if inj.InitMHz != 3000 || inj.TargetMHz != 1200 {
		t.Fatalf("injection = %+v", inj)
	}
	lat := inj.TransitionLatencyNs()
	if lat < 20_000 || lat > 25_000 {
		t.Fatalf("down-transition latency %d ns, want in [20000, 25000]", lat)
	}
	// Before completion the core still runs at the initial frequency.
	if f := c.CurrentFreqMHz(); f != 3000 {
		t.Fatalf("mid-transition frequency = %v", f)
	}
	clk.AdvanceTo(inj.CompleteNs)
	if f := c.CurrentFreqMHz(); f != 1200 {
		t.Fatalf("post-transition frequency = %v", f)
	}
}

func TestUpTransitionSlower(t *testing.T) {
	c, clk := newCore(t, testConfig())
	injDown, _ := c.SetFrequency(1200)
	clk.AdvanceTo(injDown.CompleteNs)
	injUp, _ := c.SetFrequency(3000)
	if injUp.TransitionLatencyNs() <= injDown.TransitionLatencyNs() {
		t.Fatalf("up %d ns not slower than down %d ns",
			injUp.TransitionLatencyNs(), injDown.TransitionLatencyNs())
	}
}

func TestSetFrequencyUnsupported(t *testing.T) {
	c, _ := newCore(t, testConfig())
	if _, err := c.SetFrequency(1500); err == nil {
		t.Fatal("unsupported frequency accepted")
	}
}

func TestSetFrequencyNoop(t *testing.T) {
	c, _ := newCore(t, testConfig())
	inj, err := c.SetFrequency(3000)
	if err != nil {
		t.Fatal(err)
	}
	if inj.TransitionLatencyNs() != 0 {
		t.Fatalf("no-op change latency = %d", inj.TransitionLatencyNs())
	}
}

func TestRunIterationsScalesWithFrequency(t *testing.T) {
	cfg := testConfig()
	cfg.IterJitterSigma = 1e-9
	c, clk := newCore(t, cfg)

	mean := func(samples []IterSample) float64 {
		var sum float64
		for _, s := range samples {
			sum += float64(s.DurNs())
		}
		return sum / float64(len(samples))
	}

	at3000, err := c.RunIterations(100, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	inj, _ := c.SetFrequency(1200)
	clk.AdvanceTo(inj.CompleteNs)
	at1200, err := c.RunIterations(100, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mean(at1200) / mean(at3000)
	if math.Abs(ratio-2.5) > 0.05 {
		t.Fatalf("duration ratio = %v, want ≈2.5", ratio)
	}
}

func TestRunIterationsSpansTransition(t *testing.T) {
	cfg := testConfig()
	cfg.IterJitterSigma = 1e-9
	cfg.Transition = UniformTransition{BaseNs: 100_000} // 100 µs, no jitter
	c, _ := newCore(t, cfg)

	// 10 µs iterations at 3 GHz; request a change, keep iterating.
	if _, err := c.SetFrequency(1200); err != nil {
		t.Fatal(err)
	}
	samples, err := c.RunIterations(300, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	first := float64(samples[0].DurNs())
	last := float64(samples[len(samples)-1].DurNs())
	if first > 11_000 {
		t.Fatalf("first iteration %v ns, want ≈10000 (still at 3 GHz)", first)
	}
	if last < 24_000 || last > 26_000 {
		t.Fatalf("last iteration %v ns, want ≈25000 (at 1.2 GHz)", last)
	}
}

func TestRunIterationsMonotoneTimestamps(t *testing.T) {
	c, _ := newCore(t, testConfig())
	samples, err := c.RunIterations(200, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for i, s := range samples {
		if s.EndNs < s.StartNs || s.StartNs < prev {
			t.Fatalf("iteration %d not monotone: %+v (prev end %d)", i, s, prev)
		}
		prev = s.EndNs
	}
}

func TestRunIterationsValidation(t *testing.T) {
	c, _ := newCore(t, testConfig())
	if _, err := c.RunIterations(0, 100); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := c.RunIterations(10, 0); err == nil {
		t.Error("cycles=0 accepted")
	}
}

func TestInjectionsRecorded(t *testing.T) {
	c, clk := newCore(t, testConfig())
	i1, _ := c.SetFrequency(1800)
	clk.AdvanceTo(i1.CompleteNs)
	c.SetFrequency(2400)
	if got := len(c.Injections()); got != 2 {
		t.Fatalf("len(Injections) = %d", got)
	}
	if c.Injections()[1].InitMHz != 1800 {
		t.Fatalf("second injection init = %v", c.Injections()[1].InitMHz)
	}
}

func TestOverlappingRequestSupersedes(t *testing.T) {
	cfg := testConfig()
	cfg.Transition = UniformTransition{BaseNs: 1_000_000} // 1 ms
	c, clk := newCore(t, cfg)
	c.SetFrequency(1200)
	// Second request lands mid-transition.
	inj2, err := c.SetFrequency(2400)
	if err != nil {
		t.Fatal(err)
	}
	// The first change never lands; after the second completes the core
	// runs at its target.
	clk.AdvanceTo(inj2.CompleteNs)
	if f := c.CurrentFreqMHz(); f != 2400 {
		t.Fatalf("frequency after superseding change = %v, want 2400", f)
	}
}

func TestTimestampsQuantised(t *testing.T) {
	cfg := testConfig()
	cfg.TimerResolutionNs = 100
	c, _ := newCore(t, cfg)
	samples, err := c.RunIterations(10, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.StartNs%100 != 0 || s.EndNs%100 != 0 {
			t.Fatalf("timestamps not quantised: %+v", s)
		}
	}
}
