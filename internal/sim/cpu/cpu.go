// Package cpu models a single DVFS-capable CPU core for the FTaLaT
// baseline (§III–IV): the same iterative arithmetic workload as the GPU
// microbenchmark, but executed synchronously on the host with
// nanosecond-resolution timestamps and microsecond-scale frequency
// transition latencies — the regime in which FTaLaT's confidence-interval
// detection works well.
//
// The contrast this package enables is the paper's headline comparison:
// CPUs complete transitions in microseconds to low milliseconds, GPUs in
// tens to hundreds of milliseconds.
package cpu

import (
	"fmt"

	"golatest/internal/sim/clock"
)

// TransitionModel samples the core's frequency transition duration.
type TransitionModel interface {
	// SampleNs returns the transition duration in nanoseconds for a
	// change from initMHz to targetMHz.
	SampleNs(initMHz, targetMHz float64, r *clock.Rand) int64
}

// UniformTransition is the simple CPU transition model: a base duration
// plus uniform jitter, optionally longer for upward changes (voltage must
// rise before frequency can — the Skylake behaviour of the paper's
// Fig. 1).
type UniformTransition struct {
	BaseNs   int64
	JitterNs int64
	// UpPenaltyNs is added when targetMHz > initMHz.
	UpPenaltyNs int64
}

// SampleNs implements TransitionModel.
func (m UniformTransition) SampleNs(initMHz, targetMHz float64, r *clock.Rand) int64 {
	d := m.BaseNs
	if targetMHz > initMHz {
		d += m.UpPenaltyNs
	}
	if m.JitterNs > 0 && r != nil {
		d += int64(r.Uniform(0, float64(m.JitterNs)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Config describes the simulated core.
type Config struct {
	Name     string
	FreqsMHz []float64 // supported P-state frequencies, ascending
	// DefaultFreqMHz is the frequency at reset (defaults to max).
	DefaultFreqMHz float64
	// Transition samples the frequency-change latency (required).
	Transition TransitionModel
	// WriteCostNs is the host cost of the sysfs/MSR write requesting the
	// change (default 2 µs).
	WriteCostNs int64
	// TimerResolutionNs quantises timestamp reads (default 1 ns, a
	// TSC-class timer; the CUDA global timer is three orders of magnitude
	// coarser — see the paper's footnote 1).
	TimerResolutionNs int64
	// IterJitterSigma is the relative per-iteration execution noise
	// (default 0.004).
	IterJitterSigma float64
	Seed            uint64
}

func (c Config) normalize() (Config, error) {
	if c.Name == "" {
		return c, fmt.Errorf("cpu: config missing Name")
	}
	if len(c.FreqsMHz) == 0 {
		return c, fmt.Errorf("cpu: %s: no frequency steps", c.Name)
	}
	for i := 1; i < len(c.FreqsMHz); i++ {
		if c.FreqsMHz[i] <= c.FreqsMHz[i-1] {
			return c, fmt.Errorf("cpu: %s: FreqsMHz not strictly ascending", c.Name)
		}
	}
	if c.FreqsMHz[0] <= 0 {
		return c, fmt.Errorf("cpu: %s: non-positive frequency", c.Name)
	}
	if c.Transition == nil {
		return c, fmt.Errorf("cpu: %s: nil TransitionModel", c.Name)
	}
	if c.DefaultFreqMHz == 0 {
		c.DefaultFreqMHz = c.FreqsMHz[len(c.FreqsMHz)-1]
	}
	found := false
	for _, f := range c.FreqsMHz {
		if f == c.DefaultFreqMHz {
			found = true
		}
	}
	if !found {
		return c, fmt.Errorf("cpu: %s: default frequency %v not in step table", c.Name, c.DefaultFreqMHz)
	}
	if c.WriteCostNs == 0 {
		c.WriteCostNs = 2000
	}
	if c.TimerResolutionNs == 0 {
		c.TimerResolutionNs = 1
	}
	if c.IterJitterSigma == 0 {
		c.IterJitterSigma = 0.004
	}
	return c, nil
}

// Injection is the ground-truth record of a CPU frequency change.
type Injection struct {
	RequestNs  int64
	CompleteNs int64
	InitMHz    float64
	TargetMHz  float64
}

// TransitionLatencyNs returns the ground-truth transition latency.
func (in Injection) TransitionLatencyNs() int64 { return in.CompleteNs - in.RequestNs }

// IterSample is one timed workload iteration (host timestamps, quantised
// to the timer resolution).
type IterSample struct {
	StartNs int64
	EndNs   int64
}

// DurNs returns the iteration duration.
func (s IterSample) DurNs() int64 { return s.EndNs - s.StartNs }

// Core is one simulated DVFS CPU core.
type Core struct {
	cfg Config
	clk *clock.Clock
	rng *clock.Rand

	curFreq  float64
	pendFreq float64
	pendAtNs int64 // host time the pending change completes; 0 = none
	injected []Injection
}

// New constructs a core bound to the host clock.
func New(cfg Config, clk *clock.Clock) (*Core, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	return &Core{
		cfg:     cfg,
		clk:     clk,
		rng:     clock.NewRand(cfg.Seed, 0x637075), // "cpu"
		curFreq: cfg.DefaultFreqMHz,
	}, nil
}

// Config returns the normalised configuration.
func (c *Core) Config() Config { return c.cfg }

// Clock returns the host clock the core runs against.
func (c *Core) Clock() *clock.Clock { return c.clk }

// settle applies a pending frequency change whose completion time has
// passed.
func (c *Core) settle() {
	if c.pendAtNs != 0 && c.clk.Now() >= c.pendAtNs {
		c.curFreq = c.pendFreq
		c.pendAtNs = 0
	}
}

// CurrentFreqMHz reports the frequency effective now.
func (c *Core) CurrentFreqMHz() float64 {
	c.settle()
	return c.curFreq
}

// SetFrequency requests a P-state change. The call blocks the host for
// the register-write cost; the change completes after the sampled
// transition latency. Overlapping a pending change supersedes it
// (hardware leaves this undefined; §III notes the Haswell behaviour).
func (c *Core) SetFrequency(targetMHz float64) (Injection, error) {
	supported := false
	for _, f := range c.cfg.FreqsMHz {
		if f == targetMHz {
			supported = true
		}
	}
	if !supported {
		return Injection{}, fmt.Errorf("cpu: %s: unsupported frequency %v MHz", c.cfg.Name, targetMHz)
	}
	c.clk.Advance(c.cfg.WriteCostNs)
	c.settle()
	now := c.clk.Now()
	dur := c.cfg.Transition.SampleNs(c.curFreq, targetMHz, c.rng)
	inj := Injection{
		RequestNs:  now,
		CompleteNs: now + dur,
		InitMHz:    c.curFreq,
		TargetMHz:  targetMHz,
	}
	if targetMHz == c.curFreq {
		inj.CompleteNs = now
	}
	c.pendFreq = targetMHz
	c.pendAtNs = inj.CompleteNs
	c.injected = append(c.injected, inj)
	return inj, nil
}

// Injections returns all ground-truth change records so far.
func (c *Core) Injections() []Injection { return c.injected }

// RunIterations executes n workload iterations of the given cycle budget
// synchronously, advancing the host clock, and returns their timestamps.
// Iterations crossing a transition boundary blend the two frequencies,
// exactly like the GPU integration.
func (c *Core) RunIterations(n int, cyclesPerIter float64) ([]IterSample, error) {
	if n <= 0 || cyclesPerIter <= 0 {
		return nil, fmt.Errorf("cpu: invalid workload n=%d cycles=%v", n, cyclesPerIter)
	}
	out := make([]IterSample, n)
	for i := 0; i < n; i++ {
		start := c.clk.Now()
		jitter := c.rng.Normal(1, c.cfg.IterJitterSigma)
		if jitter < 0.5 {
			jitter = 0.5
		}
		c.advanceCycles(cyclesPerIter * jitter)
		out[i] = IterSample{StartNs: c.quantize(start), EndNs: c.quantize(c.clk.Now())}
	}
	return out, nil
}

// advanceCycles consumes the cycle budget across the (at most one)
// pending frequency boundary.
func (c *Core) advanceCycles(cycles float64) {
	for cycles > 0 {
		c.settle()
		rate := c.curFreq / 1000 // cycles per ns
		if c.pendAtNs == 0 {
			c.clk.Advance(int64(cycles/rate + 0.5))
			return
		}
		span := float64(c.pendAtNs - c.clk.Now())
		if cycles <= span*rate {
			c.clk.Advance(int64(cycles/rate + 0.5))
			return
		}
		cycles -= span * rate
		c.clk.AdvanceTo(c.pendAtNs)
	}
}

func (c *Core) quantize(t int64) int64 {
	q := c.cfg.TimerResolutionNs
	return t - t%q
}
