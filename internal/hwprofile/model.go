// Package hwprofile encodes the three GPUs of the paper's evaluation —
// GH200, A100-SXM4, and RTX Quadro 6000 — as simulator configurations:
// the Table I metadata (SM counts, clock tables, driver strings) and,
// crucially, per-architecture DVFS latency models calibrated against the
// paper's measured distributions (Table II, Fig. 3 heatmaps, Fig. 4
// violins, Fig. 5/6 cluster structure, Fig. 7–9 manufacturing spread).
//
// Each model maps a frequency pair (init → target) to a mixture
// distribution over switching latencies. The mixtures are deterministic
// functions of the pair (via a pair hash), so a pair's character — which
// target rows are pathological, whether a low cluster exists, where its
// ceiling sits — is stable across runs and across device instances, while
// individual draws vary. Per-instance jitter terms reproduce the
// unit-to-unit manufacturing variability of §VII-C without making any
// single instance systematically worse (Fig. 9's finding).
package hwprofile

import (
	"math"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// Mode is one component of a pair's latency mixture.
type Mode struct {
	MeanMs  float64
	SigmaMs float64
	Weight  float64
}

// Skew is an optional right-skewed component: OriginMs plus a lognormal
// offset with the given median and log-sigma, capped at CapMs (draws
// beyond the cap are smeared into the region just below it). Its body is
// dense near the origin and thins smoothly toward the cap, so DBSCAN
// chains the pair into a single broad cluster — the A100 and GH200
// normal-pair signature — while max statistics still reach the ceiling.
type Skew struct {
	Weight   float64
	OriginMs float64
	MedianMs float64 // median of the lognormal offset above the origin
	SigmaLog float64
	CapMs    float64
}

// PairDist is the sampled-from distribution of one frequency pair.
type PairDist struct {
	Modes []Mode
	// Skew, when non-nil, participates in mode selection with its Weight.
	Skew *Skew
	// FloorMs clamps every non-outlier draw from below, keeping broad
	// lobes from dipping under the pair's physical floor.
	FloorMs     float64
	OutlierProb float64
	OutlierLoMs float64
	OutlierHiMs float64
}

// Model is an architecture DVFS latency model implementing
// gpu.LatencyModel. Classify must be a pure function of the pair.
type Model struct {
	// BusDelayMeanNs/JitterNs model the CPU→device command travel time
	// (the switching-vs-transition gap of Fig. 2).
	BusDelayMeanNs   float64
	BusDelayJitterNs float64
	// Classify returns the latency mixture of a pair.
	Classify func(initMHz, targetMHz float64) PairDist
}

// Sample implements gpu.LatencyModel.
func (m *Model) Sample(initMHz, targetMHz float64, r *clock.Rand) gpu.Transition {
	d := m.Classify(initMHz, targetMHz)
	var latMs float64
	if d.OutlierProb > 0 && r.Bool(d.OutlierProb) {
		latMs = r.Uniform(d.OutlierLoMs, d.OutlierHiMs)
	} else {
		n := len(d.Modes)
		if d.Skew != nil {
			n++
		}
		weights := make([]float64, n)
		for i, mo := range d.Modes {
			weights[i] = mo.Weight
		}
		if d.Skew != nil {
			weights[n-1] = d.Skew.Weight
		}
		pick := r.PickWeighted(weights)
		if d.Skew != nil && pick == n-1 {
			sk := d.Skew
			latMs = sk.OriginMs + r.LogNormal(math.Log(sk.MedianMs), sk.SigmaLog)
			if sk.CapMs > 0 && latMs > sk.CapMs {
				// Smear over-cap draws across the upper band of the
				// range: keeps the ceiling populated without creating a
				// detached lobe DBSCAN would split off.
				latMs = sk.CapMs - r.Uniform(0, 0.70*(sk.CapMs-sk.OriginMs))
			}
		} else {
			mo := d.Modes[pick]
			latMs = r.Normal(mo.MeanMs, mo.SigmaMs)
		}
		if latMs < d.FloorMs {
			latMs = d.FloorMs
		}
	}
	if latMs < 0.05 {
		latMs = 0.05
	}
	bus := r.Normal(m.BusDelayMeanNs, m.BusDelayJitterNs)
	if bus < 1000 {
		bus = 1000
	}
	total := int64(latMs * 1e6)
	busNs := int64(bus)
	if busNs > total {
		busNs = total / 2
	}
	// The sampled latency is the full request→completion time; the bus
	// delay is carved out of it so Injection bookkeeping matches Fig. 2.
	return gpu.Transition{BusDelayNs: busNs, DurationNs: total - busNs}
}

// pairHash returns a deterministic uniform draw in [0, 1) for the pair
// and salt, independent across salts. It is the mechanism that freezes a
// pair's mixture shape across runs and instances.
func pairHash(seed uint64, initMHz, targetMHz float64, salt uint64) float64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, v := range []uint64{math.Float64bits(initMHz), math.Float64bits(targetMHz), salt} {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 33
	}
	return float64(h>>11) / (1 << 53)
}

// normalizeWeights rescales mode weights to sum to 1, dropping
// non-positive entries.
func normalizeWeights(modes []Mode) []Mode {
	var sum float64
	out := modes[:0]
	for _, mo := range modes {
		if mo.Weight > 0 {
			sum += mo.Weight
			out = append(out, mo)
		}
	}
	for i := range out {
		out[i].Weight /= sum
	}
	return out
}
