package hwprofile

// This file holds the per-architecture latency calibrations. Numbers are
// fitted to the paper's published artefacts:
//
//   A100   — Table II (best 4.4–6.0 ms, worst 7.4–22.7 ms, mean 15.6),
//            Fig. 3c (down-transitions cap ≈20–22 ms, up ≈13–17 ms),
//            Fig. 4b (tight, single-lobe violins), §VII-B (96 % of pairs
//            form a single cluster), Fig. 7/8 (instance ranges ≈0.1–1 ms
//            on minima, ≈1–12 ms on maxima).
//   GH200  — Fig. 3a/3b (floor 5.2–6.7 ms; pathological targets around
//            1260 MHz and 1860–1890 MHz reaching 245–310 ms, extremes to
//            477 ms), Fig. 5/6 (two-to-five latency clusters on some
//            pairs), §VII-B (85 % single cluster).
//   RTX    — Fig. 3d (banded maxima: ≈20 ms for targets ≤860 or ≥1600,
//            ≈237 ms around 930 MHz, mixed 136/237 around 990 MHz,
//            ≈135–137 ms across the 1050–1560 mid band with sporadic
//            150–240 ms and sub-millisecond minima), Table II (best-case
//            min 0.558 ms, worst-case max 350 ms), §VII-B (70 % single
//            cluster).

// a100Model: a dominant low cluster at 4.4–5.8 ms with a continuous
// right-skewed tail toward a pair-specific ceiling (a lognormal body with
// its over-cap mass smeared under the ceiling), so DBSCAN chains the pair
// into one broad cluster — the A100's 96 % single-cluster signature —
// while max statistics still land on the ceiling.
func a100Model(seed, inst uint64) *Model {
	return &Model{
		BusDelayMeanNs:   35_000,
		BusDelayJitterNs: 8_000,
		Classify: func(init, target float64) PairDist {
			h := func(salt uint64) float64 { return pairHash(seed, init, target, salt) }
			hi01 := func(salt uint64) float64 {
				return pairHash(seed^(0xabcd+inst*0x1009), init, target, salt)
			}

			lo := 4.35 + 1.45*h(1)*h(1) // best-case floor, mass near 4.4–5.0
			down := init > target
			var ceilBase float64
			if down {
				ceilBase = 19.0 + 3.2*h(2) // Fig. 3c lower-left ≈20–22
			} else {
				ceilBase = 13.0 + 4.2*h(2) // Fig. 3c upper-right ≈13–17
			}
			// Some pairs never reach the architectural ceiling (Fig. 3c
			// holes at 7–11 ms).
			ceil := lo + (ceilBase-lo)*(0.30+0.70*h(3))

			// Unit-to-unit manufacturing jitter: small on the floor,
			// larger on the ceiling, occasionally pronounced.
			lo += 0.30 * hi01(10)
			ceil += 2.2 * hi01(11)
			if h(12) < 0.06 {
				ceil += 7.0 * hi01(13)
			}

			// One broad right-skewed cluster: a tight body at the floor
			// thinning continuously toward the pair ceiling. DBSCAN
			// chains it into a single cluster (the A100's 96 %
			// single-cluster share) while max statistics reach the
			// ceiling and min statistics stay at the floor.
			return PairDist{
				Modes: []Mode{{MeanMs: lo, SigmaMs: 0.22, Weight: 0.45}},
				Skew: &Skew{
					Weight:   0.55,
					OriginMs: lo - 0.3,
					MedianMs: (ceil - lo) / 6,
					SigmaLog: 1.45,
					CapMs:    ceil,
				},
				FloorMs:     lo - 0.5,
				OutlierProb: 0.015,
				OutlierLoMs: 28,
				OutlierHiMs: 90,
			}
		},
	}
}

// gh200Model: a very tight 5.2–6.5 ms floor on most pairs with a modest
// tail, but pathological target rows (around 1260 MHz and 1860–1890 MHz)
// whose mixtures sit at 55–110 / ~135 / 250–310 ms with a rare lobe near
// 460 ms — up to five separated clusters, Fig. 5's signature. A small
// fraction of other pairs carries one mid lobe (100–215 ms), giving the
// 15 % multi-cluster share and the scattered high cells of Fig. 3b.
func gh200Model(seed, inst uint64) *Model {
	return &Model{
		BusDelayMeanNs:   55_000,
		BusDelayJitterNs: 12_000,
		Classify: func(init, target float64) PairDist {
			h := func(salt uint64) float64 { return pairHash(seed, init, target, salt) }
			hi01 := func(salt uint64) float64 {
				return pairHash(seed^(0xabcd+inst*0x1009), init, target, salt)
			}

			lo := 5.15 + 1.3*h(1) + 0.2*hi01(10)
			// Pathological rows, matching Fig. 3b's structure: the whole
			// 1875 MHz column (except from ≈1920 MHz), and the 1260 MHz
			// column for low initial clocks plus a scattering of others —
			// roughly 10 % of all pairs.
			var patho bool
			switch {
			case target >= 1860 && target <= 1890:
				patho = init < 1905 || init > 1935
			case target >= 1250 && target <= 1270:
				patho = init <= 1170 || h(21) < 0.35
			}

			if !patho {
				// Tight floor plus an exponential tail toward a modest
				// per-pair ceiling (Fig. 3b's 10–25 ms cells); chained by
				// DBSCAN into one cluster on most pairs.
				hi2 := 8 + 17*h(2)
				d := PairDist{
					Modes: []Mode{{MeanMs: lo, SigmaMs: 0.35, Weight: 0.62}},
					Skew: &Skew{
						Weight:   0.38,
						OriginMs: lo - 0.2,
						MedianMs: (hi2 - lo) / 8,
						SigmaLog: 1.3,
						CapMs:    hi2,
					},
					FloorMs:     lo - 0.4,
					OutlierProb: 0.012,
					OutlierLoMs: 330,
					OutlierHiMs: 480,
				}
				// Sporadic mid lobe: the 15 % multi-cluster share and the
				// isolated 100–215 ms cells of Fig. 3b.
				if h(3) < 0.08 {
					d.Modes = append(d.Modes, Mode{
						MeanMs: 100 + 115*h(4), SigmaMs: 4, Weight: 0.07})
					d.Modes[0].Weight = 0.55
				}
				return d
			}

			modes := []Mode{
				{MeanMs: 55 + 55*h(5), SigmaMs: 3, Weight: 0.30},
				{MeanMs: 130 + 12*h(6), SigmaMs: 4, Weight: 0.12},
				{MeanMs: 248 + 58*h(7) + 1.5*hi01(11), SigmaMs: 6, Weight: 0.40},
			}
			// About half the pathological pairs keep a fast lobe, so their
			// minima stay near the floor (Fig. 3a's 8–18 ms cells) while
			// the rest bottom out at 43–140 ms.
			if h(8) < 0.5 {
				modes = append(modes, Mode{MeanMs: lo, SigmaMs: 0.2, Weight: 0.35})
			}
			// Rare extreme lobe: the 450–477 ms records of Fig. 3b.
			if h(9) < 0.20 {
				modes = append(modes, Mode{MeanMs: 455 + 20*h(12), SigmaMs: 7, Weight: 0.04})
			}
			return PairDist{
				Modes:       normalizeWeights(modes),
				OutlierProb: 0.015,
				OutlierLoMs: 380,
				OutlierHiMs: 480,
			}
		},
	}
}

// rtxModel: the banded Turing behaviour of Fig. 3d, driven almost
// entirely by the target frequency. The violin's "multiple regions of
// frequent values" and the 70 % single-cluster share fall out of the
// per-pair presence flags.
func rtxModel(seed, inst uint64) *Model {
	return &Model{
		BusDelayMeanNs:   40_000,
		BusDelayJitterNs: 10_000,
		Classify: func(init, target float64) PairDist {
			h := func(salt uint64) float64 { return pairHash(seed, init, target, salt) }
			hi01 := func(salt uint64) float64 {
				return pairHash(seed^(0xabcd+inst*0x1009), init, target, salt)
			}

			out := PairDist{
				OutlierProb: 0.018,
				OutlierLoMs: 250,
				OutlierHiMs: 400,
			}
			switch {
			case target <= 860 || target >= 1600:
				// Fast band: ~15–23 ms body with a continuous tail toward
				// 25–39 ms (one chained cluster, like Fig. 3d's low
				// columns).
				lo := 14 + 9*h(1) + 0.4*hi01(10)
				hi := 25 + 14*h(2)
				out.Modes = []Mode{{MeanMs: lo, SigmaMs: 0.9, Weight: 0.82}}
				out.Skew = &Skew{
					Weight:   0.18,
					OriginMs: lo - 1,
					MedianMs: (hi - lo) / 6,
					SigmaLog: 1.2,
					CapMs:    hi,
				}
				out.FloorMs = lo - 2.5
			case target >= 900 && target < 960:
				// Hottest band: ≈237 ms, some pairs keeping a ~20 ms lobe,
				// a rare 350 ms lobe (Table II's 350.436 record region).
				modes := []Mode{
					{MeanMs: 237 + 2*h(3) + 0.6*hi01(11), SigmaMs: 1.2, Weight: 0.75},
				}
				if h(4) < 0.28 {
					modes = append(modes, Mode{MeanMs: 20 + 2*h(5), SigmaMs: 1, Weight: 0.15})
				}
				if h(6) < 0.10 {
					modes = append(modes, Mode{MeanMs: 349, SigmaMs: 2, Weight: 0.05})
				}
				out.Modes = normalizeWeights(modes)
			case target >= 960 && target < 1030:
				// Mixed band: 136 ms and 237 ms lobes coexist.
				modes := []Mode{
					{MeanMs: 136 + 2.5*h(7) + 0.6*hi01(12), SigmaMs: 1.3, Weight: 0.45},
				}
				if h(8) < 0.50 {
					modes = append(modes, Mode{MeanMs: 237 + 1.5*h(9), SigmaMs: 1.2, Weight: 0.35})
				}
				if h(10) < 0.22 {
					modes = append(modes, Mode{MeanMs: 20 + 3*h(11), SigmaMs: 1.2, Weight: 0.08})
				}
				out.Modes = normalizeWeights(modes)
			default:
				// Mid band 1050–1560 MHz: a wall at ≈135–137 ms, with
				// per-pair fast lobes (≈20 ms), rare sub-millisecond
				// minima (Table II's 0.558 ms), and sporadic 150–240 ms
				// ceilings.
				modes := []Mode{
					{MeanMs: 135.3 + 2.2*h(12) + 0.6*hi01(13), SigmaMs: 1.1, Weight: 0.82},
				}
				if h(13) < 0.20 {
					modes = append(modes, Mode{MeanMs: 19.5 + 2.5*h(14), SigmaMs: 1, Weight: 0.10})
				}
				if h(15) < 0.05 {
					modes = append(modes, Mode{MeanMs: 0.6 + 30*h(16), SigmaMs: 0.3, Weight: 0.04})
				}
				if h(17) < 0.09 {
					modes = append(modes, Mode{MeanMs: 150 + 90*h(18), SigmaMs: 5, Weight: 0.05})
				}
				out.Modes = normalizeWeights(modes)
			}
			return out
		},
	}
}
