package hwprofile

import (
	"math"
	"testing"

	"golatest/internal/sim/clock"
	"golatest/internal/stats"
)

func TestTable1Metadata(t *testing.T) {
	cases := []struct {
		p        Profile
		sms      int
		memMHz   float64
		minF     float64
		maxF     float64
		steps    int
		nom      float64
		arch     string
		evalFreq int
	}{
		{RTXQuadro6000(), 72, 7001, 300, 2100, 120, 1440, "Turing", 14},
		{A100(), 108, 1215, 210, 1410, 81, 1095, "Ampere", 18},
		{GH200(), 132, 2619, 345, 1980, 110, 1980, "Hopper", 18},
	}
	for _, c := range cases {
		cfg := c.p.Config
		if cfg.SMCount != c.sms {
			t.Errorf("%s: SMCount = %d, want %d", c.p.Key, cfg.SMCount, c.sms)
		}
		if cfg.MemFreqMHz != c.memMHz {
			t.Errorf("%s: MemFreqMHz = %v, want %v", c.p.Key, cfg.MemFreqMHz, c.memMHz)
		}
		if got := cfg.FreqsMHz[0]; got != c.minF {
			t.Errorf("%s: min clock = %v, want %v", c.p.Key, got, c.minF)
		}
		if got := cfg.FreqsMHz[len(cfg.FreqsMHz)-1]; got != c.maxF {
			t.Errorf("%s: max clock = %v, want %v", c.p.Key, got, c.maxF)
		}
		if got := len(cfg.FreqsMHz); got != c.steps {
			t.Errorf("%s: steps = %d, want %d", c.p.Key, got, c.steps)
		}
		if c.p.NomFreqMHz != c.nom {
			t.Errorf("%s: nominal = %v, want %v", c.p.Key, c.p.NomFreqMHz, c.nom)
		}
		if cfg.Architecture != c.arch {
			t.Errorf("%s: arch = %q", c.p.Key, cfg.Architecture)
		}
		if got := len(c.p.EvalFreqsMHz); got != c.evalFreq {
			t.Errorf("%s: eval freqs = %d, want %d", c.p.Key, got, c.evalFreq)
		}
	}
}

func TestEvalFreqsAreSupported(t *testing.T) {
	for _, p := range All() {
		for _, f := range p.EvalFreqsMHz {
			if !p.Config.SupportsFreq(f) {
				t.Errorf("%s: eval frequency %v not in clock table", p.Key, f)
			}
		}
	}
}

func TestProfilesConstructDevices(t *testing.T) {
	clk := clock.New()
	for _, p := range All() {
		if _, err := p.NewDevice(clk); err != nil {
			t.Errorf("%s: NewDevice: %v", p.Key, err)
		}
	}
}

func TestByKey(t *testing.T) {
	for _, key := range []string{"gh200", "a100", "rtx6000"} {
		p, err := ByKey(key)
		if err != nil || p.Key != key {
			t.Errorf("ByKey(%q) = %v, %v", key, p.Key, err)
		}
	}
	if _, err := ByKey("h100"); err == nil {
		t.Error("unknown key accepted")
	}
}

// sampleLatenciesMs draws n switching latencies (in ms) for a pair.
func sampleLatenciesMs(m *Model, init, target float64, n int, seed uint64) []float64 {
	r := clock.NewRand(seed, 99)
	out := make([]float64, n)
	for i := range out {
		tr := m.Sample(init, target, r)
		out[i] = float64(tr.BusDelayNs+tr.DurationNs) / 1e6
	}
	return out
}

func TestModelDeterministicPerStream(t *testing.T) {
	p := A100()
	m := p.Config.Latency.(*Model)
	a := sampleLatenciesMs(m, 1095, 705, 50, 7)
	b := sampleLatenciesMs(m, 1095, 705, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestA100Calibration(t *testing.T) {
	m := A100().Config.Latency.(*Model)
	evals := A100().EvalFreqsMHz

	var mins, maxsDown, maxsUp []float64
	for _, init := range evals {
		for _, target := range evals {
			if init == target {
				continue
			}
			xs := sampleLatenciesMs(m, init, target, 200, 5)
			// Trim outliers crudely for calibration checks.
			lo, _ := stats.MinMax(xs)
			q99 := stats.Quantile(xs, 0.97)
			mins = append(mins, lo)
			if init > target {
				maxsDown = append(maxsDown, q99)
			} else {
				maxsUp = append(maxsUp, q99)
			}
		}
	}
	minSummary := stats.Summarize(mins)
	// Best-case floor: Table II reports 4.4–6.0 ms with mean ≈5.
	if minSummary.Min < 3.4 || minSummary.Min > 5.0 {
		t.Errorf("A100 best min = %v, want ≈4.4", minSummary.Min)
	}
	if minSummary.Mean < 4.2 || minSummary.Mean > 6.2 {
		t.Errorf("A100 best mean = %v, want ≈5", minSummary.Mean)
	}
	if minSummary.Max > 8 {
		t.Errorf("A100 best max = %v, want ≲6", minSummary.Max)
	}
	// Worst-case ceilings: down-transitions cap ≈20–22, up ≈13–17.
	downMean := stats.Mean(maxsDown)
	upMean := stats.Mean(maxsUp)
	if downMean <= upMean {
		t.Errorf("A100 down ceiling %v not above up ceiling %v", downMean, upMean)
	}
	if downMean < 12 || downMean > 24 {
		t.Errorf("A100 down ceiling mean = %v, want ≈17–21", downMean)
	}
	if upMean < 9 || upMean > 18 {
		t.Errorf("A100 up ceiling mean = %v, want ≈12–15", upMean)
	}
	// Everything stays well under 30 ms barring explicit outliers.
	allMax := math.Max(stats.Mean(maxsDown), stats.Summarize(maxsDown).Max)
	if allMax > 30 {
		t.Errorf("A100 ceiling reaches %v, want < 30", allMax)
	}
}

func TestGH200Calibration(t *testing.T) {
	p := GH200()
	m := p.Config.Latency.(*Model)
	evals := p.EvalFreqsMHz

	var floorVals []float64
	pathoMax := 0.0
	normalHighCells := 0
	normalPairs := 0
	for _, init := range evals {
		for _, target := range evals {
			if init == target {
				continue
			}
			xs := sampleLatenciesMs(m, init, target, 150, 9)
			min, _ := stats.MinMax(xs)
			// q97 stands in for the DBSCAN-filtered maximum: raw maxima
			// are dominated by the injected driver outliers by design.
			max := stats.Quantile(xs, 0.97)
			patho := (target >= 1240 && target <= 1300) || (target >= 1850 && target <= 1900)
			if patho {
				if max > pathoMax {
					pathoMax = max
				}
			} else {
				floorVals = append(floorVals, min)
				normalPairs++
				if max > 90 {
					normalHighCells++
				}
			}
		}
	}
	fs := stats.Summarize(floorVals)
	if fs.Median < 4.8 || fs.Median > 7.0 {
		t.Errorf("GH200 floor median = %v, want ≈5.2–6.5", fs.Median)
	}
	if pathoMax < 240 {
		t.Errorf("GH200 pathological ceiling = %v, want ≥ 245", pathoMax)
	}
	// Scattered high cells exist but stay a small minority.
	frac := float64(normalHighCells) / float64(normalPairs)
	if frac < 0.02 || frac > 0.25 {
		t.Errorf("GH200 sporadic high-cell share = %v, want ≈0.08", frac)
	}
}

func TestGH200PathologicalPairMultiCluster(t *testing.T) {
	// The Fig. 5 pair (1770→1260) must span several separated lobes.
	m := GH200().Config.Latency.(*Model)
	xs := sampleLatenciesMs(m, 1770, 1260, 300, 11)
	s := stats.Summarize(xs)
	if s.Max < 200 {
		t.Fatalf("pathological pair max = %v, want ≥ 245-ish", s.Max)
	}
	if s.Max-s.Min < 100 {
		t.Fatalf("pathological pair span = %v, want wide multi-lobe", s.Max-s.Min)
	}
}

func TestRTXCalibrationBands(t *testing.T) {
	p := RTXQuadro6000()
	m := p.Config.Latency.(*Model)

	medianFor := func(target float64) float64 {
		xs := sampleLatenciesMs(m, 1290, target, 150, 13)
		return stats.Median(xs)
	}
	if got := medianFor(750); got < 10 || got > 30 {
		t.Errorf("RTX fast band median = %v, want ≈15–23", got)
	}
	if got := medianFor(930); got < 200 || got > 260 {
		t.Errorf("RTX hot band median = %v, want ≈237", got)
	}
	if got := medianFor(1110); got < 100 || got > 160 {
		t.Errorf("RTX mid band median = %v, want ≈135", got)
	}
	if got := medianFor(1650); got < 10 || got > 45 {
		t.Errorf("RTX fast-high band median = %v, want ≈15–40", got)
	}
}

func TestRTXSubMillisecondMinExists(t *testing.T) {
	// Table II best-case min is 0.558 ms: some mid-band pair must
	// occasionally dip below ~2 ms.
	p := RTXQuadro6000()
	m := p.Config.Latency.(*Model)
	best := math.Inf(1)
	for _, init := range p.EvalFreqsMHz {
		for _, target := range p.EvalFreqsMHz {
			if init == target || target < 1030 || target > 1570 {
				continue
			}
			xs := sampleLatenciesMs(m, init, target, 120, 17)
			if min, _ := stats.MinMax(xs); min < best {
				best = min
			}
		}
	}
	if best > 5 {
		t.Fatalf("RTX best-ever minimum = %v ms, want sub-5 ms lobe to exist", best)
	}
}

func TestInstanceVariabilityBoundedAndStructureShared(t *testing.T) {
	// Across the four A100 units: the same pair must keep the same band
	// (structure shared), differ only by small offsets (Fig. 7/8), and
	// no single unit dominates (Fig. 9).
	var medians [4][]float64
	evals := A100().EvalFreqsMHz[:8]
	for idx := 0; idx < 4; idx++ {
		m := A100Instance(idx).Config.Latency.(*Model)
		for _, init := range evals {
			for _, target := range evals {
				if init == target {
					continue
				}
				xs := sampleLatenciesMs(m, init, target, 80, 23)
				medians[idx] = append(medians[idx], stats.Median(xs))
			}
		}
	}
	worstCount := make([]int, 4)
	for pairIdx := range medians[0] {
		lo, hi := medians[0][pairIdx], medians[0][pairIdx]
		worst := 0
		for idx := 1; idx < 4; idx++ {
			v := medians[idx][pairIdx]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
				worst = idx
			}
		}
		if hi-lo > 6 {
			t.Fatalf("pair %d: instance spread %v ms too large", pairIdx, hi-lo)
		}
		worstCount[worst]++
	}
	for idx, c := range worstCount {
		if c > len(medians[0])*3/4 {
			t.Fatalf("instance %d is worst on %d/%d pairs: systematic bias", idx, c, len(medians[0]))
		}
	}
}

func TestSampleNeverNegative(t *testing.T) {
	r := clock.NewRand(1, 1)
	for _, p := range All() {
		m := p.Config.Latency.(*Model)
		for i := 0; i < 2000; i++ {
			init := p.EvalFreqsMHz[i%len(p.EvalFreqsMHz)]
			target := p.EvalFreqsMHz[(i*7+3)%len(p.EvalFreqsMHz)]
			tr := m.Sample(init, target, r)
			if tr.BusDelayNs < 0 || tr.DurationNs < 0 {
				t.Fatalf("%s: negative transition %+v", p.Key, tr)
			}
			if tr.BusDelayNs == 0 && tr.DurationNs == 0 {
				t.Fatalf("%s: zero transition", p.Key)
			}
		}
	}
}

func TestNormalizeWeights(t *testing.T) {
	modes := normalizeWeights([]Mode{
		{MeanMs: 1, Weight: 2},
		{MeanMs: 2, Weight: 0},
		{MeanMs: 3, Weight: 6},
	})
	if len(modes) != 2 {
		t.Fatalf("zero-weight mode kept: %+v", modes)
	}
	if math.Abs(modes[0].Weight-0.25) > 1e-12 || math.Abs(modes[1].Weight-0.75) > 1e-12 {
		t.Fatalf("weights = %+v", modes)
	}
}

func TestPairHashProperties(t *testing.T) {
	// Determinism and salt independence.
	if pairHash(1, 100, 200, 5) != pairHash(1, 100, 200, 5) {
		t.Fatal("pairHash not deterministic")
	}
	if pairHash(1, 100, 200, 5) == pairHash(1, 100, 200, 6) {
		t.Fatal("salts collide")
	}
	if pairHash(1, 100, 200, 5) == pairHash(1, 200, 100, 5) {
		t.Fatal("pair direction ignored")
	}
	// Rough uniformity.
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := pairHash(7, float64(i), float64(i*3), 9)
		if v < 0 || v >= 1 {
			t.Fatalf("hash out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("hash mean = %v, want ≈0.5", mean)
	}
}
