package hwprofile

import (
	"fmt"

	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

// Profile bundles one paper GPU: its simulator configuration (including
// the calibrated latency model) and the frequency subset the paper's
// figures evaluate.
type Profile struct {
	// Key identifies the profile in CLIs and file names:
	// "gh200", "a100", "rtx6000".
	Key string
	// Config is the full device configuration, ready for gpu.New.
	Config gpu.Config
	// EvalFreqsMHz is the frequency subset used in the paper's heatmaps.
	EvalFreqsMHz []float64
	// NomFreqMHz is the nominal (boost-base) clock from Table I.
	NomFreqMHz float64
	// Instance is the unit index for multi-GPU variability studies.
	Instance int
}

// NewDevice instantiates the simulated device on the given host clock.
func (p Profile) NewDevice(clk *clock.Clock) (*gpu.Device, error) {
	return gpu.New(p.Config, clk)
}

// freqSteps builds an inclusive ascending clock table.
func freqSteps(lo, hi, step float64) []float64 {
	var out []float64
	for f := lo; f <= hi+1e-9; f += step {
		out = append(out, f)
	}
	return out
}

// deviceClockQuirks derives a plausible device-clock offset and drift
// from the seed, giving the PTP phase real work.
func deviceClockQuirks(seed uint64) (offsetNs int64, driftPPM float64) {
	h1 := pairHash(seed, 1, 2, 0xc10c)
	h2 := pairHash(seed, 3, 4, 0xd41f)
	return int64(50e6 + h1*400e6), (h2 - 0.5) * 6 // 50–450 ms, ±3 ppm
}

// GH200 returns the Grace Hopper module's H100-class GPU profile
// (Table I column 3).
func GH200() Profile {
	const seed = 0x6768323030 // "gh200"
	model := gh200Model(seed, 0)
	offset, drift := deviceClockQuirks(seed)
	return Profile{
		Key: "gh200",
		Config: gpu.Config{
			Name:           "GH200",
			Architecture:   "Hopper",
			Driver:         "545.23.08",
			SMCount:        132,
			MemFreqMHz:     2619,
			FreqsMHz:       freqSteps(345, 1980, 15), // 110 steps
			DefaultFreqMHz: 1980,
			ClockOffsetNs:  offset,
			ClockDriftPPM:  drift,
			Latency:        model,
			Seed:           seed,
		},
		EvalFreqsMHz: []float64{705, 795, 885, 975, 1095, 1170, 1260, 1275,
			1290, 1350, 1410, 1500, 1665, 1770, 1830, 1875, 1920, 1980},
		NomFreqMHz: 1980,
	}
}

// A100 returns the A100-SXM4 profile (Table I column 2), unit 0.
func A100() Profile { return A100Instance(0) }

// A100Instance returns one of the four front-row A100 units of §VII-C.
// Instances share every pair's mixture structure (the same targets are
// slow on every unit) but carry small unit-specific offsets, reproducing
// the Fig. 7/8 spread without any unit being uniformly worse (Fig. 9).
func A100Instance(idx int) Profile {
	const seed = 0x61313030 // "a100"
	model := a100Model(seed, uint64(idx))
	offset, drift := deviceClockQuirks(seed + uint64(idx)*977)
	return Profile{
		Key: "a100",
		Config: gpu.Config{
			Name:           fmt.Sprintf("A100-SXM4[%d]", idx),
			Architecture:   "Ampere",
			Driver:         "550.54.15",
			SMCount:        108,
			MemFreqMHz:     1215,
			FreqsMHz:       freqSteps(210, 1410, 15), // 81 steps
			DefaultFreqMHz: 1410,
			ClockOffsetNs:  offset,
			ClockDriftPPM:  drift,
			Latency:        model,
			Seed:           seed + uint64(idx)*7919,
		},
		EvalFreqsMHz: []float64{705, 750, 795, 840, 885, 930, 975, 1020,
			1065, 1095, 1125, 1170, 1215, 1260, 1305, 1350, 1395, 1410},
		NomFreqMHz: 1095,
		Instance:   idx,
	}
}

// RTXQuadro6000 returns the professional Turing card's profile
// (Table I column 1).
func RTXQuadro6000() Profile {
	const seed = 0x727478 // "rtx"
	model := rtxModel(seed, 0)
	offset, drift := deviceClockQuirks(seed)
	// 300–2070 MHz in 15 MHz steps plus the 2100 MHz boost ceiling:
	// 120 programmable steps, matching Table I.
	freqs := append(freqSteps(300, 2070, 15), 2100)
	return Profile{
		Key: "rtx6000",
		Config: gpu.Config{
			Name:           "RTX Quadro 6000",
			Architecture:   "Turing",
			Driver:         "530.41.03",
			SMCount:        72,
			MemFreqMHz:     7001,
			FreqsMHz:       freqs,
			DefaultFreqMHz: 2100,
			ClockOffsetNs:  offset,
			ClockDriftPPM:  drift,
			Latency:        model,
			Seed:           seed,
		},
		EvalFreqsMHz: []float64{750, 810, 930, 990, 1050, 1110, 1170, 1290,
			1350, 1410, 1440, 1470, 1560, 1650},
		NomFreqMHz: 1440,
	}
}

// All returns the three paper profiles in Table I order.
func All() []Profile {
	return []Profile{RTXQuadro6000(), A100(), GH200()}
}

// ByKey resolves a profile key ("gh200", "a100", "rtx6000").
func ByKey(key string) (Profile, error) {
	for _, p := range All() {
		if p.Key == key {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("hwprofile: unknown profile %q (want gh200, a100, or rtx6000)", key)
}
