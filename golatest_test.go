package golatest

import (
	"math"
	"testing"
)

func TestProfilesExposed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 3 {
		t.Fatalf("Profiles = %d", len(ps))
	}
	for _, key := range []string{"gh200", "a100", "rtx6000"} {
		p, err := ProfileByKey(key)
		if err != nil || p.Key != key {
			t.Errorf("ProfileByKey(%q): %v, %v", key, p.Key, err)
		}
	}
	if _, err := ProfileByKey("nope"); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestA100UnitsDiffer(t *testing.T) {
	a := A100Unit(0)
	b := A100Unit(1)
	if a.Config.Seed == b.Config.Seed {
		t.Fatal("units share a seed")
	}
	if a.Instance != 0 || b.Instance != 1 {
		t.Fatalf("instances: %d, %d", a.Instance, b.Instance)
	}
}

func TestOpenAndRunQuickCampaign(t *testing.T) {
	p, err := ProfileByKey("a100")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Config{
		Frequencies:      []float64{705, 1410},
		Blocks:           2,
		MinMeasurements:  5,
		MaxMeasurements:  8,
		RSECheckEvery:    5,
		MaxLatencyHintNs: 120_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	for _, pr := range res.Pairs {
		if pr.Summary.N == 0 {
			t.Fatalf("%v: no samples", pr.Pair)
		}
		if pr.Summary.Median < 3 || pr.Summary.Median > 60 {
			t.Fatalf("%v: implausible median %v ms", pr.Pair, pr.Summary.Median)
		}
	}
}

func TestDeviceExposesGroundTruth(t *testing.T) {
	p, _ := ProfileByKey("gh200")
	dev, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.NVML().SetApplicationsClocks(0, 705); err != nil {
		t.Fatal(err)
	}
	inj, ok := dev.Sim().LastInjection()
	if !ok || inj.TargetMHz != 705 {
		t.Fatalf("ground truth: %+v, %v", inj, ok)
	}
	if lat := float64(inj.SwitchingLatencyNs()) / 1e6; lat <= 0 || math.IsNaN(lat) {
		t.Fatalf("injected latency = %v", lat)
	}
}
