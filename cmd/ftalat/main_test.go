package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseFreqs(t *testing.T) {
	got, err := parseFreqs("1200,2400")
	if err != nil || len(got) != 2 {
		t.Fatalf("parseFreqs = %v, %v", got, err)
	}
	if _, err := parseFreqs("1200"); err == nil {
		t.Error("single clock accepted")
	}
	if _, err := parseFreqs("x,y"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-repeats", "8", "1200,2400"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "FTaLaT") || !strings.Contains(text, "1200→2400 MHz") {
		t.Fatalf("output:\n%s", text)
	}
	if !strings.Contains(text, "latency [µs]") {
		t.Fatalf("missing latency lines:\n%s", text)
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing clock list accepted")
	}
	if err := run([]string{"1200,1200"}, &out); err == nil {
		t.Error("duplicate clocks accepted (core rejects non-ascending)")
	}
}
