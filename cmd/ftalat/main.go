// Command ftalat runs the FTaLaT CPU frequency-transition-latency
// baseline (§III–IV) on the simulated DVFS core, printing per-pair
// transition latencies in microseconds — the µs-scale contrast to the
// GPU tool's ms-scale results.
//
// Usage:
//
//	ftalat [flags] <comma-separated core clocks in MHz>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"golatest/internal/ftalat"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/cpu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftalat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftalat", flag.ContinueOnError)
	var (
		repeats = fs.Int("repeats", 30, "measurements per pair")
		baseUs  = fs.Float64("base", 25, "core transition base latency in µs")
		jitUs   = fs.Float64("jitter", 20, "core transition jitter in µs")
		upUs    = fs.Float64("up-penalty", 25, "extra µs for upward transitions")
		seed    = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one argument: a comma-separated clock list")
	}
	freqs, err := parseFreqs(fs.Arg(0))
	if err != nil {
		return err
	}

	core, err := cpu.New(cpu.Config{
		Name:     "Skylake-SP (simulated)",
		FreqsMHz: freqs,
		Transition: cpu.UniformTransition{
			BaseNs:      int64(*baseUs * 1000),
			JitterNs:    int64(*jitUs * 1000),
			UpPenaltyNs: int64(*upUs * 1000),
		},
		Seed: *seed,
	}, clock.New())
	if err != nil {
		return err
	}
	runner, err := ftalat.NewRunner(core, ftalat.Config{
		Frequencies: freqs,
		Repeats:     *repeats,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "FTaLaT (simulated) — %s, %d clocks\n", core.Config().Name, len(freqs))
	res, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "phase 1: %d valid pairs, %d excluded\n",
		len(res.Phase1.ValidPairs), len(res.Phase1.Excluded))
	for _, pr := range res.Pairs {
		fmt.Fprintf(out, "%-18s n=%-3d failures=%-3d latency [µs]: %s\n",
			pr.Pair.String(), len(pr.Samples), pr.Failures, pr.Summary.String())
	}
	return nil
}

func parseFreqs(arg string) ([]float64, error) {
	parts := strings.Split(arg, ",")
	freqs := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad clock %q: %w", p, err)
		}
		freqs = append(freqs, f)
	}
	if len(freqs) < 2 {
		return nil, fmt.Errorf("need at least two clocks, got %d", len(freqs))
	}
	return freqs, nil
}
