// Command storedsup supervises one stored daemon: it starts the child
// command, watches both the process (a crash is detected the instant
// the child exits) and its readiness endpoint (a wedged daemon — alive
// but failing /readyz — is killed after a run of consecutive probe
// failures), and restarts it with capped exponential backoff. The
// backoff doubles across quick successive failures and resets to its
// floor once a child stays up past the stability window, so a
// crash-looping daemon cannot saturate the host while a one-off crash
// restarts almost immediately.
//
// Usage:
//
//	storedsup [-probe URL] [-poll D] [-fail-grace N]
//	          [-backoff-min D] [-backoff-max D] [-stable-after D]
//	          [-status HOST:PORT] [--] CMD [ARGS...]
//
// Everything after the flags (or an explicit --) is the child command,
// typically `stored -dir DIR -addr HOST:PORT`. The child's stdout and
// stderr pass through, so the daemon's structured log keeps flowing to
// whatever collects the supervisor's.
//
// With -status, the supervisor serves GET /status: a JSON snapshot of
// the child PID, lifecycle state (starting/ready/backoff), restart
// counters split by cause (crash vs. wedge), cumulative probe
// failures, and the child's current uptime — the counters a fleet
// dashboard or a test asserts restart behavior against.
//
// On SIGINT/SIGTERM the supervisor forwards SIGTERM to the child (so
// stored runs its own drain), waits for it to exit, and leaves. State
// lives in the daemon's store directory, not here: the supervisor is
// deliberately memoryless across its own restarts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s, err := newSupervisor(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "storedsup:", err)
		os.Exit(2)
	}
	if err := s.run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "storedsup:", err)
		os.Exit(1)
	}
}

// errWedged marks a child the prober condemned: alive, but failing
// readiness past the grace run.
var errWedged = errors.New("storedsup: child wedged (readiness probes exhausted)")

// supervisor is one configured instance; split from main so tests drive
// it against ephemeral ports and a cancellable context.
type supervisor struct {
	argv        []string
	probeURL    string
	poll        time.Duration
	failGrace   int
	backoffMin  time.Duration
	backoffMax  time.Duration
	stableAfter time.Duration
	statusLn    net.Listener // nil = no status endpoint
	out         io.Writer
	log         *slog.Logger
	probeClient *http.Client

	mu        sync.Mutex
	pid       int
	state     string
	started   time.Time
	lastError string

	restarts      int64 // total, = crashRestarts + wedgeRestarts
	crashRestarts int64
	wedgeRestarts int64
	probeFailures int64
}

func newSupervisor(args []string, out io.Writer) (*supervisor, error) {
	fs := flag.NewFlagSet("storedsup", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		probe       = fs.String("probe", "", "readiness URL to poll (e.g. http://127.0.0.1:8417/readyz); empty = restart on exit only")
		poll        = fs.Duration("poll", 2*time.Second, "readiness probe period")
		failGrace   = fs.Int("fail-grace", 3, "consecutive probe failures before the child is declared wedged and restarted")
		backoffMin  = fs.Duration("backoff-min", 500*time.Millisecond, "restart backoff floor")
		backoffMax  = fs.Duration("backoff-max", 30*time.Second, "restart backoff cap (doubling stops here)")
		stableAfter = fs.Duration("stable-after", time.Minute, "child uptime after which the backoff resets to its floor")
		status      = fs.String("status", "", "serve GET /status (restart counters, child state) on this address; empty = off")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	argv := fs.Args()
	if len(argv) == 0 {
		return nil, fmt.Errorf("no child command: storedsup [flags] -- CMD [ARGS...]")
	}
	if *poll <= 0 {
		return nil, fmt.Errorf("-poll must be positive, got %v", *poll)
	}
	if *failGrace < 1 {
		return nil, fmt.Errorf("-fail-grace must be at least 1, got %d", *failGrace)
	}
	if *backoffMin <= 0 || *backoffMax < *backoffMin {
		return nil, fmt.Errorf("backoff bounds %v..%v are not an increasing positive range", *backoffMin, *backoffMax)
	}
	var ln net.Listener
	if *status != "" {
		var err error
		if ln, err = net.Listen("tcp", *status); err != nil {
			return nil, err
		}
	}
	return &supervisor{
		argv:        argv,
		probeURL:    *probe,
		poll:        *poll,
		failGrace:   *failGrace,
		backoffMin:  *backoffMin,
		backoffMax:  *backoffMax,
		stableAfter: *stableAfter,
		statusLn:    ln,
		out:         out,
		log:         slog.New(slog.NewTextHandler(out, nil)),
		// The probe must answer within a poll period, or it would lag the
		// schedule it drives.
		probeClient: &http.Client{Timeout: *poll},
		state:       "starting",
	}, nil
}

// StatusURL returns the status endpoint's base URL ("" when disabled).
func (s *supervisor) StatusURL() string {
	if s.statusLn == nil {
		return ""
	}
	return "http://" + s.statusLn.Addr().String()
}

// statusSnapshot is the GET /status document.
type statusSnapshot struct {
	PID           int     `json:"pid"`
	State         string  `json:"state"`
	Restarts      int64   `json:"restarts"`
	CrashRestarts int64   `json:"crash_restarts"`
	WedgeRestarts int64   `json:"wedge_restarts"`
	ProbeFailures int64   `json:"probe_failures"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	LastError     string  `json:"last_error,omitempty"`
}

func (s *supervisor) snapshot() statusSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := statusSnapshot{
		PID:           s.pid,
		State:         s.state,
		Restarts:      s.restarts,
		CrashRestarts: s.crashRestarts,
		WedgeRestarts: s.wedgeRestarts,
		ProbeFailures: s.probeFailures,
		LastError:     s.lastError,
	}
	if s.pid != 0 && !s.started.IsZero() {
		snap.UptimeSeconds = time.Since(s.started).Seconds()
	}
	return snap
}

func (s *supervisor) setState(state string) {
	s.mu.Lock()
	s.state = state
	s.mu.Unlock()
}

func (s *supervisor) serveStatus(ctx context.Context) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.snapshot())
	})
	srv := &http.Server{Handler: mux}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	_ = srv.Serve(s.statusLn)
}

// run supervises until the context is cancelled. It never returns a
// child failure — surviving those is the job — only a configuration
// error surfaced by the status server setup.
func (s *supervisor) run(ctx context.Context) error {
	if s.statusLn != nil {
		go s.serveStatus(ctx)
		s.log.Info("status endpoint", "url", s.StatusURL())
	}
	backoff := s.backoffMin
	for {
		if ctx.Err() != nil {
			return nil
		}
		start := time.Now()
		err := s.runChild(ctx)
		if ctx.Err() != nil {
			return nil
		}
		// The backoff ladder: a child that stayed up past the stability
		// window earns a fresh floor; a quick death doubles the wait, up
		// to the cap.
		if time.Since(start) >= s.stableAfter {
			backoff = s.backoffMin
		} else {
			backoff = min(backoff*2, s.backoffMax)
		}
		s.mu.Lock()
		s.restarts++
		if errors.Is(err, errWedged) {
			s.wedgeRestarts++
		} else {
			s.crashRestarts++
		}
		if err != nil {
			s.lastError = err.Error()
		} else {
			s.lastError = "child exited"
		}
		s.pid = 0
		s.state = "backoff"
		s.mu.Unlock()
		s.log.Warn("child down, restarting", "error", err, "backoff", backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
	}
}

// runChild runs one child incarnation to its end: process exit (the
// error is the exit status, possibly nil), a wedge verdict (errWedged,
// child killed), or context cancellation (SIGTERM forwarded, exit
// awaited, nil returned).
func (s *supervisor) runChild(ctx context.Context) error {
	cmd := exec.Command(s.argv[0], s.argv[1:]...)
	cmd.Stdout = s.out
	cmd.Stderr = s.out
	if err := cmd.Start(); err != nil {
		return err
	}
	s.mu.Lock()
	s.pid = cmd.Process.Pid
	s.started = time.Now()
	s.state = "starting"
	s.mu.Unlock()
	s.log.Info("child started", "pid", cmd.Process.Pid, "cmd", s.argv[0])

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	tick := time.NewTicker(s.poll)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-ctx.Done():
			// Forward the shutdown so stored drains cleanly; escalate to
			// SIGKILL only if the drain stalls.
			_ = cmd.Process.Signal(syscall.SIGTERM)
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				_ = cmd.Process.Kill()
				<-done
			}
			return nil
		case err := <-done:
			return err
		case <-tick.C:
			if s.probeURL == "" {
				continue
			}
			if s.probe() {
				fails = 0
				s.setState("ready")
				continue
			}
			fails++
			s.mu.Lock()
			s.probeFailures++
			s.mu.Unlock()
			if fails >= s.failGrace {
				// The wait below cannot hang: SIGKILL is not maskable.
				_ = cmd.Process.Kill()
				<-done
				return errWedged
			}
		}
	}
}

// probe reports one readiness check: a 200 within the poll period.
func (s *supervisor) probe() bool {
	resp, err := s.probeClient.Get(s.probeURL)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
