package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the supervisor's and child's concurrent log writes
// race-safely meet the test's assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestSupervisorFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                 // no child command
		{"-poll", "0s", "--", "true"},      // non-positive poll
		{"-fail-grace", "0", "--", "true"}, // grace below 1
		{"-backoff-min", "2s", "-backoff-max", "1s", "--", "true"}, // inverted range
	}
	for _, args := range cases {
		if _, err := newSupervisor(args, &bytes.Buffer{}); err == nil {
			t.Errorf("newSupervisor(%v) accepted invalid flags", args)
		}
	}
}

// startSupervisor runs a supervisor in the background and tears it down
// with the test.
func startSupervisor(t *testing.T, args ...string) (*supervisor, *syncBuffer) {
	t.Helper()
	out := &syncBuffer{}
	s, err := newSupervisor(args, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("supervisor run: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("supervisor did not stop on context cancel")
		}
	})
	return s, out
}

// fetchStatus reads and decodes the supervisor's /status document.
func fetchStatus(t *testing.T, s *supervisor) statusSnapshot {
	t.Helper()
	resp, err := http.Get(s.StatusURL() + "/status")
	if err != nil {
		t.Fatalf("status endpoint: %v", err)
	}
	defer resp.Body.Close()
	var snap statusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return snap
}

// waitStatus polls /status until cond holds or the deadline passes.
func waitStatus(t *testing.T, s *supervisor, what string, timeout time.Duration, cond func(statusSnapshot) bool) statusSnapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snap := fetchStatus(t, s)
		if cond(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last status %+v", what, snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reservePort grabs an ephemeral loopback port for the child daemon, so
// the probe URL is known before the child starts.
func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// buildStored compiles the real stored binary the supervisor will run.
func buildStored(t *testing.T) string {
	t.Helper()
	exe := t.TempDir() + "/stored"
	cmd := exec.Command("go", "build", "-o", exe, "golatest/cmd/stored")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building stored: %v\n%s", err, out)
	}
	return exe
}

// TestSupervisorRestartsKilledDaemon is the acceptance contract: the
// supervisor runs a real stored daemon, the daemon is SIGKILLed out
// from under it, and a fresh incarnation must be serving /readyz again
// — crash detection is the process wait, so recovery needs one backoff
// floor plus the daemon's own startup, well inside a few poll periods.
func TestSupervisorRestartsKilledDaemon(t *testing.T) {
	exe := buildStored(t)
	addr := reservePort(t)
	s, _ := startSupervisor(t,
		"-probe", "http://"+addr+"/readyz",
		"-poll", "50ms",
		"-fail-grace", "3",
		"-backoff-min", "10ms",
		"-backoff-max", "200ms",
		"-status", "127.0.0.1:0",
		"--", exe, "-dir", t.TempDir(), "-addr", addr,
	)
	ready := waitStatus(t, s, "first child ready", 15*time.Second, func(st statusSnapshot) bool {
		return st.State == "ready" && st.PID != 0
	})

	killedAt := time.Now()
	if err := syscall.Kill(ready.PID, syscall.SIGKILL); err != nil {
		t.Fatalf("killing child %d: %v", ready.PID, err)
	}
	recovered := waitStatus(t, s, "restarted child ready", 15*time.Second, func(st statusSnapshot) bool {
		return st.State == "ready" && st.PID != 0 && st.PID != ready.PID && st.Restarts >= 1
	})
	if recovered.CrashRestarts < 1 {
		t.Fatalf("SIGKILL not accounted as a crash restart: %+v", recovered)
	}
	// The daemon answers its own probe again — the restart is real, not
	// just a PID in the status document.
	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted daemon /readyz = (%v, %v), want 200", resp, err)
	}
	resp.Body.Close()
	// Sanity-bound the recovery: a 10ms backoff floor and 50ms poll must
	// not take seconds (the generous bound absorbs CI scheduling noise).
	if took := time.Since(killedAt); took > 10*time.Second {
		t.Fatalf("recovery took %v", took)
	}
}

// TestSupervisorRestartsWedgedChild: a child that is alive but never
// answers readiness is condemned after -fail-grace consecutive probe
// failures and restarted.
func TestSupervisorRestartsWedgedChild(t *testing.T) {
	sleepBin, err := exec.LookPath("sleep")
	if err != nil {
		t.Skip("no sleep binary on PATH")
	}
	// Nothing listens on the probed port: every probe fails.
	s, _ := startSupervisor(t,
		"-probe", "http://"+reservePort(t)+"/readyz",
		"-poll", "15ms",
		"-fail-grace", "2",
		"-backoff-min", "5ms",
		"-backoff-max", "50ms",
		"-status", "127.0.0.1:0",
		"--", sleepBin, "60",
	)
	snap := waitStatus(t, s, "wedge restarts", 15*time.Second, func(st statusSnapshot) bool {
		return st.WedgeRestarts >= 2
	})
	if snap.ProbeFailures < 4 {
		t.Fatalf("probe failures = %d across ≥ 2 wedge cycles, want ≥ 4", snap.ProbeFailures)
	}
	if snap.Restarts < snap.WedgeRestarts {
		t.Fatalf("restart accounting inconsistent: %+v", snap)
	}
}

// TestSupervisorForwardsShutdown: cancelling the supervisor SIGTERMs
// the child and waits for it; nothing is left running.
func TestSupervisorForwardsShutdown(t *testing.T) {
	exe := buildStored(t)
	addr := reservePort(t)
	out := &syncBuffer{}
	s, err := newSupervisor([]string{
		"-probe", "http://" + addr + "/readyz",
		"-poll", "50ms",
		"-status", "127.0.0.1:0",
		"--", exe, "-dir", t.TempDir(), "-addr", addr,
	}, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.run(ctx) }()
	snap := waitStatus(t, s, "child ready", 15*time.Second, func(st statusSnapshot) bool {
		return st.State == "ready" && st.PID != 0
	})

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after cancel: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("supervisor did not return after cancel")
	}
	// The child is gone: signalling it must fail (ESRCH), not reach a
	// live process.
	if err := syscall.Kill(snap.PID, syscall.Signal(0)); err == nil {
		_ = syscall.Kill(snap.PID, syscall.SIGKILL)
		t.Fatalf("child %d still alive after supervisor shutdown", snap.PID)
	}
	if !bytes.Contains([]byte(out.String()), []byte("shut down")) {
		t.Fatalf("child drain not visible in passthrough output:\n%s", out.String())
	}
}
