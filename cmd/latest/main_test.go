package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"golatest/internal/report"
)

func TestParseFreqs(t *testing.T) {
	got, err := parseFreqs("705, 1065 ,1410")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 705 || got[2] != 1410 {
		t.Fatalf("parseFreqs = %v", got)
	}
	if _, err := parseFreqs("705"); err == nil {
		t.Error("single clock accepted")
	}
	if _, err := parseFreqs("705,abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseFreqs(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-profile", "a100", "-min", "5", "-max", "8", "-hint", "120",
		"-blocks", "2", "-out", dir, "-hostname", "testhost",
		"705,1410",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "A100-SXM4[0]") || !strings.Contains(text, "705→1410 MHz") {
		t.Fatalf("output:\n%s", text)
	}
	// Both pair CSVs must exist and round-trip.
	name := report.CSVFileName(705, 1410, "testhost", 0)
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vals, err := report.ReadLatencyCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) < 5 {
		t.Fatalf("CSV has %d rows", len(vals))
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"705,1410", "extra"}, &out); err == nil {
		t.Error("extra positional arg accepted")
	}
	if err := run([]string{}, &out); err == nil {
		t.Error("missing clock list accepted")
	}
	if err := run([]string{"-profile", "h100", "705,1410"}, &out); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run([]string{"-device", "3", "705,1410"}, &out); err == nil {
		t.Error("device index beyond node accepted")
	}
}

func TestRunMultiDevice(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{
		"-profile", "a100", "-devices", "2", "-device", "1",
		"-min", "5", "-max", "6", "-hint", "120", "-blocks", "2",
		"-out", dir, "705,1410",
	}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "A100-SXM4[1] [device 1]") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestRunWakeupMode(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-profile", "a100", "-wakeup", "-hint", "120", "-blocks", "2", "705,1410"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "wakeup [ms]") || !strings.Contains(text, "true") {
		t.Fatalf("wakeup output:\n%s", text)
	}
}
