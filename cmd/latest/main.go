// Command latest is the Go port of the paper's LATEST benchmarking tool
// (§VI), run against the simulated GPUs: it measures the streaming-
// multiprocessor frequency switching latency of a device for every
// statistically distinguishable pair of the given clocks, and writes one
// CSV per pair under the paper's naming convention.
//
// Usage:
//
//	latest [flags] <comma-separated SM clocks in MHz>
//
// The clock list is the tool's one mandatory argument. Flags mirror the
// original tool's options: device index, RSE threshold, minimum and
// maximum measurement counts, plus simulation-specific selectors for the
// GPU profile and output directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"golatest/internal/core"
	"golatest/internal/hwprofile"
	"golatest/internal/nvml"
	"golatest/internal/report"
	"golatest/internal/sim/clock"
	"golatest/internal/sim/gpu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "latest:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("latest", flag.ContinueOnError)
	var (
		profileKey = fs.String("profile", "a100", "simulated GPU profile: gh200, a100, rtx6000")
		deviceIdx  = fs.Int("device", 0, "device index in the simulated multi-GPU node")
		devices    = fs.Int("devices", 1, "number of simulated devices in the node")
		rse        = fs.Float64("rse", 0.05, "relative standard error stopping threshold")
		minMeas    = fs.Int("min", 25, "minimum measurements per pair (RSE checks skipped before)")
		maxMeas    = fs.Int("max", 100, "maximum measurements per pair")
		hintMs     = fs.Float64("hint", 0, "capture upper bound in ms (0 = probe per §V)")
		blocks     = fs.Int("blocks", 4, "SM-resident blocks simulated per kernel (0 = all SMs)")
		outDir     = fs.String("out", ".", "directory for the per-pair CSV files")
		hostname   = fs.String("hostname", "simnode", "hostname used in CSV file names")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		wakeup     = fs.Bool("wakeup", false, "estimate the wake-up latency at each clock instead of measuring pairs (§V)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one argument: a comma-separated clock list (got %d)", fs.NArg())
	}
	freqs, err := parseFreqs(fs.Arg(0))
	if err != nil {
		return err
	}
	prof, err := hwprofile.ByKey(*profileKey)
	if err != nil {
		return err
	}
	if *deviceIdx < 0 || *deviceIdx >= *devices {
		return fmt.Errorf("device index %d outside the %d-device node", *deviceIdx, *devices)
	}

	// Build the simulated node. A100 units use the §VII-C manufacturing-
	// variability instances; other profiles replicate with distinct seeds.
	clk := clock.New()
	sims := make([]*gpu.Device, 0, *devices)
	for i := 0; i < *devices; i++ {
		p := prof
		if prof.Key == "a100" {
			p = hwprofile.A100Instance(i)
		} else {
			p.Config.Seed += uint64(i) * 7919
		}
		p.Config.Seed += *seed * 104729
		d, err := p.NewDevice(clk)
		if err != nil {
			return err
		}
		sims = append(sims, d)
	}
	lib, err := nvml.New(sims...)
	if err != nil {
		return err
	}
	handle, err := lib.DeviceHandleByIndex(*deviceIdx)
	if err != nil {
		return err
	}

	runner, err := core.NewRunner(handle, core.Config{
		Frequencies:      freqs,
		Blocks:           *blocks,
		RSETarget:        *rse,
		MinMeasurements:  *minMeas,
		MaxMeasurements:  *maxMeas,
		MaxLatencyHintNs: int64(*hintMs * 1e6),
		Seed:             *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "LATEST (simulated) — %s [device %d], %d clocks\n",
		handle.Name(), *deviceIdx, len(freqs))

	if *wakeup {
		fmt.Fprintf(out, "%-10s %14s %12s %14s %14s\n",
			"clock", "wakeup [ms]", "stabilised", "first it [ms]", "settled [ms]")
		for _, f := range freqs {
			est, err := runner.EstimateWakeup(f, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10.0f %14.3f %12v %14.4f %14.4f\n",
				f, float64(est.WakeupNs)/1e6, est.Stabilized,
				est.FirstIterMs, est.SettledIterMs)
		}
		return nil
	}

	res, err := runner.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "phase 1: %d valid pairs, %d excluded; capture bound %.1f ms\n",
		len(res.Phase1.ValidPairs), len(res.Phase1.Excluded),
		float64(res.CaptureHintNs)/1e6)

	for _, pr := range res.Pairs {
		if pr.Skipped {
			fmt.Fprintf(out, "%-18s SKIPPED: %s\n", pr.Pair.String(), pr.SkipReason)
			continue
		}
		name := report.CSVFileName(pr.Pair.InitMHz, pr.Pair.TargetMHz, *hostname, *deviceIdx)
		if err := writeCSV(filepath.Join(*outDir, name), pr.Samples); err != nil {
			return err
		}
		fmt.Fprintf(out, "%-18s n=%-4d outliers=%-3d rse=%-7.4f %s → %s\n",
			pr.Pair.String(), len(pr.Samples), len(pr.Outliers), pr.FinalRSE,
			pr.Summary.String(), name)
	}
	return nil
}

func writeCSV(path string, samples []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.WriteLatencyCSV(f, samples); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseFreqs(arg string) ([]float64, error) {
	parts := strings.Split(arg, ",")
	freqs := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad clock %q: %w", p, err)
		}
		freqs = append(freqs, f)
	}
	if len(freqs) < 2 {
		return nil, fmt.Errorf("need at least two clocks, got %d", len(freqs))
	}
	return freqs, nil
}
