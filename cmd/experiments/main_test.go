package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedArtefacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "table1,fig1,fig2,cidegen", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.md", "fig1_cpu_trace.txt", "fig2_acc_trace.txt", "ci_degeneration.md"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "[table1  ]") {
		t.Fatalf("progress log:\n%s", out.String())
	}
	// Unselected artefacts must not appear.
	if _, err := os.Stat(filepath.Join(dir, "table2.md")); !os.IsNotExist(err) {
		t.Fatal("table2.md generated despite -only filter")
	}
}

func TestRunTable1Content(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GH200", "A100", "RTX Quadro 6000", "132", "108", "72"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("table1.md missing %q:\n%s", want, data)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "medium"}, &out); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range generators {
		if seen[g.id] {
			t.Fatalf("duplicate generator id %q", g.id)
		}
		seen[g.id] = true
	}
	if len(generators) != 18 {
		t.Fatalf("generators = %d, want 18 artefacts", len(generators))
	}
}

func TestRunAllArtefactsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator at quick scale (~20 s)")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every generator produces at least one file; heatmaps and ranges
	// produce two (txt + csv).
	if len(entries) < len(generators) {
		t.Fatalf("artefact files = %d, want ≥ %d", len(entries), len(generators))
	}
	for _, name := range []string{
		"table2.md", "fig3_gh200_max.csv", "fig4_violins.txt",
		"fig5_scatter.csv", "fig7_ranges.txt", "fig9_boxplots.txt",
		"cluster_census.md", "cpu_vs_gpu.md", "ablations.md",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
