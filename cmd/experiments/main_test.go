package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golatest/internal/store"
	"golatest/internal/storenet"
)

func TestRunSelectedArtefacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "table1,fig1,fig2,cidegen", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.md", "fig1_cpu_trace.txt", "fig2_acc_trace.txt", "ci_degeneration.md"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "[table1  ]") {
		t.Fatalf("progress log:\n%s", out.String())
	}
	// Unselected artefacts must not appear.
	if _, err := os.Stat(filepath.Join(dir, "table2.md")); !os.IsNotExist(err) {
		t.Fatal("table2.md generated despite -only filter")
	}
}

func TestRunTable1Content(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GH200", "A100", "RTX Quadro 6000", "132", "108", "72"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("table1.md missing %q:\n%s", want, data)
		}
	}
}

// readArtefacts returns name → contents for every file in dir.
func readArtefacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestCacheDeterminism is the acceptance contract of the persistent
// store: a repeated -cache-dir run performs zero campaign recomputation
// (the cache stats line reports no misses) and emits byte-identical
// artefacts to the cold run. fig3c exercises a single-campaign artefact,
// fig7 the fleet-sharded four-unit A100 sweep.
func TestCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five quick A100 campaigns")
	}
	cache := t.TempDir()
	coldDir, warmDir := t.TempDir(), t.TempDir()
	base := []string{"-scale", "quick", "-only", "fig3c,fig7", "-cache-dir", cache}

	var coldOut bytes.Buffer
	if err := run(append(base, "-out", coldDir), &coldOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldOut.String(), " 0 hits") {
		t.Fatalf("cold run should start from an empty store:\n%s", coldOut.String())
	}

	var warmOut bytes.Buffer
	if err := run(append(base, "-out", warmDir), &warmOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmOut.String(), " 0 misses, 0 writes") {
		t.Fatalf("warm run recomputed campaigns:\n%s", warmOut.String())
	}

	cold, warm := readArtefacts(t, coldDir), readArtefacts(t, warmDir)
	if len(cold) == 0 || len(cold) != len(warm) {
		t.Fatalf("artefact sets differ: %d cold, %d warm", len(cold), len(warm))
	}
	for name, want := range cold {
		got, ok := warm[name]
		if !ok {
			t.Fatalf("warm run missing %s", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between cold and warm runs", name)
		}
	}
}

// TestCrossProcessSweepPartition is the acceptance contract of the
// lease-coordinated store: two concurrent runs — goroutine "processes",
// each with its own Store handle — sweep the same fleet artefact over
// one cache directory, and between them compute each shard exactly once
// (the combined write count equals the shard count) while both emit
// byte-identical artefacts.
func TestCrossProcessSweepPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four-unit A100 sweep")
	}
	cache := t.TempDir()
	// fig7 is the §VII-C four-unit A100 sweep: 4 shards.
	const shards = 4
	base := []string{"-scale", "quick", "-only", "fig7", "-cache-dir", cache, "-lease-ttl", "1m"}

	type proc struct {
		out bytes.Buffer
		dir string
		err error
	}
	procs := [2]*proc{{dir: t.TempDir()}, {dir: t.TempDir()}}
	var wg sync.WaitGroup
	for i, p := range procs {
		args := append(append([]string{}, base...), "-owner", fmt.Sprintf("proc-%d", i), "-out", p.dir)
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			p.err = run(args, &p.out)
		}(p)
	}
	wg.Wait()

	writesRe := regexp.MustCompile(`(\d+) writes`)
	total := 0
	for i, p := range procs {
		if p.err != nil {
			t.Fatalf("proc %d: %v\n%s", i, p.err, p.out.String())
		}
		m := writesRe.FindStringSubmatch(p.out.String())
		if m == nil {
			t.Fatalf("proc %d reported no cache stats:\n%s", i, p.out.String())
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if !strings.Contains(p.out.String(), "leases:") {
			t.Fatalf("proc %d reported no lease stats:\n%s", i, p.out.String())
		}
	}
	if total != shards {
		t.Fatalf("combined writes = %d, want exactly %d (shards duplicated or lost across processes)",
			total, shards)
	}

	a, b := readArtefacts(t, procs[0].dir), readArtefacts(t, procs[1].dir)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artefact sets differ: %d vs %d", len(a), len(b))
	}
	for name, want := range a {
		got, ok := b[name]
		if !ok {
			t.Fatalf("second process missing %s", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between the two processes", name)
		}
	}
}

// TestTraceOutExport is the tentpole's CLI acceptance: -trace-out on a
// quick-scale lease-mode fleet sweep writes valid Chrome trace_event
// JSON whose span tree covers every shard — a fleet.sweep root, four
// fleet.shard children parented under it in distinct timeline lanes,
// claim/compute/put instants in each lane, and the store client's wire
// spans sharing the sweep's trace ID — while the run log prints the
// trace ID and the per-shard timing table.
func TestTraceOutExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four-unit A100 sweep")
	}
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storenet.NewServer(backing))
	defer srv.Close()

	traceFile := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err = run([]string{"-scale", "quick", "-only", "fig7",
		"-store-url", srv.URL, "-cache-dir", t.TempDir(), "-lease-ttl", "1m",
		"-trace-out", traceFile, "-out", t.TempDir()}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			TID   int               `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("-trace-out wrote invalid JSON: %v", err)
	}

	// Exactly one root span; its trace ID is printed in the run log.
	rootSpan, rootTrace := "", ""
	for _, e := range trace.TraceEvents {
		if e.Name == "fleet.sweep" && e.Phase == "X" {
			if rootSpan != "" {
				t.Fatal("more than one fleet.sweep root")
			}
			rootSpan, rootTrace = e.Args["span_id"], e.Args["trace_id"]
		}
	}
	if rootSpan == "" {
		t.Fatalf("no fleet.sweep span in the export:\n%s", data)
	}
	if !strings.Contains(out.String(), "trace "+rootTrace) {
		t.Fatalf("run log does not print the sweep trace ID %s:\n%s", rootTrace, out.String())
	}

	// Four shard spans under the root, one lane each.
	const shards = 4
	shardLanes := map[int]bool{}
	clientSpans := 0
	for _, e := range trace.TraceEvents {
		if e.Phase != "X" {
			continue
		}
		switch {
		case e.Name == "fleet.shard":
			if e.Args["parent_id"] != rootSpan || e.Args["trace_id"] != rootTrace {
				t.Fatalf("fleet.shard not under the sweep root: %+v", e)
			}
			if e.TID < 1 || shardLanes[e.TID] {
				t.Fatalf("shard lane %d duplicated or out of range", e.TID)
			}
			shardLanes[e.TID] = true
		case strings.HasPrefix(e.Name, "storenet."):
			// Spans issued outside the sweep (the epilogue's stats fetch)
			// legitimately carry their own root trace; only wire calls made
			// on the sweep's behalf must share its trace ID.
			if e.Args["trace_id"] == rootTrace {
				clientSpans++
			}
		}
	}
	if len(shardLanes) != shards {
		t.Fatalf("span tree covers %d shards, want %d", len(shardLanes), shards)
	}
	if clientSpans == 0 {
		t.Fatal("no store-client spans in the export")
	}

	// Every shard lane carries the claim/compute/put instants.
	for lane := range shardLanes {
		seen := map[string]bool{}
		for _, e := range trace.TraceEvents {
			if e.Phase == "i" && e.TID == lane {
				seen[e.Name] = true
			}
		}
		for _, ev := range []string{"claim", "compute", "put"} {
			if !seen[ev] {
				t.Fatalf("shard lane %d missing %q instant (has %v)", lane, ev, seen)
			}
		}
	}

	// The per-shard timing table rides the run log.
	if !strings.Contains(out.String(), "shard\tprofile\tsource") &&
		!strings.Contains(out.String(), "store") {
		t.Fatalf("no timing table in the run log:\n%s", out.String())
	}
	tableRe := regexp.MustCompile(`(?m)^\d+ +a100/\d+ +computed`)
	if !tableRe.MatchString(out.String()) {
		t.Fatalf("timing table rows missing:\n%s", out.String())
	}
}

// TestCrossHostSweepPartition is the acceptance contract of the network
// store: two "processes" with separate local cache directories,
// coordinated only through a running stored daemon (here: the storenet
// server on a loopback listener), sweep the same fleet artefact and
// between them compute each shard exactly once — the combined write
// count equals the shard count — while both emit byte-identical
// artefacts.
func TestCrossHostSweepPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four-unit A100 sweep")
	}
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storenet.NewServer(backing))
	defer srv.Close()

	// fig7 is the §VII-C four-unit A100 sweep: 4 shards.
	const shards = 4
	base := []string{"-scale", "quick", "-only", "fig7", "-store-url", srv.URL, "-lease-ttl", "1m"}

	type proc struct {
		out bytes.Buffer
		dir string
		err error
	}
	procs := [2]*proc{{dir: t.TempDir()}, {dir: t.TempDir()}}
	var wg sync.WaitGroup
	for i, p := range procs {
		args := append(append([]string{}, base...),
			"-cache-dir", t.TempDir(), // per-host local tier: nothing shared on disk
			"-owner", fmt.Sprintf("host-%d", i), "-out", p.dir)
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			p.err = run(args, &p.out)
		}(p)
	}
	wg.Wait()

	writesRe := regexp.MustCompile(`(\d+) writes`)
	total := 0
	for i, p := range procs {
		if p.err != nil {
			t.Fatalf("host %d: %v\n%s", i, p.err, p.out.String())
		}
		m := writesRe.FindStringSubmatch(p.out.String())
		if m == nil {
			t.Fatalf("host %d reported no cache stats:\n%s", i, p.out.String())
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if !strings.Contains(p.out.String(), "cache "+srv.URL) {
			t.Fatalf("host %d stats do not name the daemon:\n%s", i, p.out.String())
		}
	}
	if total != shards {
		t.Fatalf("combined writes = %d, want exactly %d (shards duplicated or lost across hosts)",
			total, shards)
	}
	if backing.Len() != shards {
		t.Fatalf("daemon indexes %d blobs, want %d", backing.Len(), shards)
	}

	a, b := readArtefacts(t, procs[0].dir), readArtefacts(t, procs[1].dir)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artefact sets differ: %d vs %d", len(a), len(b))
	}
	for name, want := range a {
		got, ok := b[name]
		if !ok {
			t.Fatalf("second host missing %s", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between the two hosts", name)
		}
	}
}

// TestStoreURLFlag: an unusable daemon URL fails fast, and the
// watermark flag demands a store like the other coordination flags.
func TestStoreURLFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-store-url", "not-a-url", "-out", t.TempDir()}, &out); err == nil {
		t.Error("bogus -store-url accepted")
	}
	if err := run([]string{"-gc-watermark-bytes", "1", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-gc-watermark-bytes without a store accepted")
	}
	// -no-cache disables a remote store too: the run must not touch the
	// daemon, so coordination flags conflict.
	err := run([]string{"-lease-ttl", "1m", "-store-url", "http://127.0.0.1:1",
		"-no-cache", "-out", t.TempDir()}, &out)
	if err == nil || !strings.Contains(err.Error(), "-no-cache") {
		t.Errorf("-lease-ttl with -no-cache'd -store-url: err=%v, want a -no-cache conflict", err)
	}
}

// TestGCWatermarkFlag: a sweep that leaves the store over the watermark
// triggers an automatic size-bounded GC pass — no -gc needed.
func TestGCWatermarkFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the four-unit A100 sweep")
	}
	cache := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-only", "fig7", "-cache-dir", cache,
		"-lease-ttl", "1m", "-gc-watermark-bytes", "1", "-out", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" && strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("blob %s survived the 1-byte watermark", e.Name())
		}
	}
}

// TestGCFlag: -gc with a size bound of one byte must evict every blob
// the previous run stored and report it.
func TestGCFlag(t *testing.T) {
	cache := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-only", "fig3c", "-cache-dir", cache,
		"-out", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 writes") {
		t.Fatalf("seed run wrote nothing:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"-scale", "quick", "-only", "table1", "-cache-dir", cache,
		"-gc", "-max-store-bytes", "1", "-out", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gc: evicted 1 of 1 blobs") {
		t.Fatalf("gc did not evict the blob:\n%s", out.String())
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "manifest.json" && strings.HasSuffix(e.Name(), ".json") {
			t.Fatalf("blob %s survived -gc -max-store-bytes 1", e.Name())
		}
	}
}

// TestFlagValidation: coordination flags require the store they act on,
// and the error names the actual conflict.
func TestCoordinationFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-lease-ttl", "1m", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-lease-ttl without -cache-dir accepted")
	}
	if err := run([]string{"-gc", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-gc without -cache-dir accepted")
	}
	err := run([]string{"-gc", "-cache-dir", t.TempDir(), "-no-cache", "-out", t.TempDir()}, &out)
	if err == nil {
		t.Fatal("-gc with -no-cache accepted")
	}
	if !strings.Contains(err.Error(), "-no-cache") {
		t.Errorf("error %q blames -cache-dir although it was given; the conflict is -no-cache", err)
	}
}

// TestNoCacheFlag: -no-cache must neither read nor write the store.
func TestNoCacheFlag(t *testing.T) {
	cache := t.TempDir()
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "fig3c", "-cache-dir", cache, "-no-cache", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "cache ") {
		t.Fatalf("-no-cache still reported store traffic:\n%s", out.String())
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("-no-cache wrote %d entries to the cache dir", len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "medium"}, &out); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range generators {
		if seen[g.id] {
			t.Fatalf("duplicate generator id %q", g.id)
		}
		seen[g.id] = true
	}
	if len(generators) != 18 {
		t.Fatalf("generators = %d, want 18 artefacts", len(generators))
	}
}

func TestRunAllArtefactsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator at quick scale (~20 s)")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every generator produces at least one file; heatmaps and ranges
	// produce two (txt + csv).
	if len(entries) < len(generators) {
		t.Fatalf("artefact files = %d, want ≥ %d", len(entries), len(generators))
	}
	for _, name := range []string{
		"table2.md", "fig3_gh200_max.csv", "fig4_violins.txt",
		"fig5_scatter.csv", "fig7_ranges.txt", "fig9_boxplots.txt",
		"cluster_census.md", "cpu_vs_gpu.md", "ablations.md",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

// TestShardOffsetFlag: the scheduling flag parses integers and 'auto',
// rejects garbage, and 'auto' demands the store whose lease state it
// consults.
func TestShardOffsetFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-shard-offset", "sideways", "-out", t.TempDir()}, &out); err == nil {
		t.Error("bogus -shard-offset accepted")
	}
	// Auto mode consults lease-mode plan state: it needs both a store
	// and -lease-ttl, or it would be silently inert.
	err := run([]string{"-shard-offset", "auto", "-cache-dir", t.TempDir(),
		"-out", t.TempDir()}, &out)
	if err == nil || !strings.Contains(err.Error(), "-lease-ttl") {
		t.Errorf("-shard-offset auto without -lease-ttl: err=%v, want a -lease-ttl demand", err)
	}
	if err := run([]string{"-shard-offset", "auto", "-lease-ttl", "1m", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-shard-offset auto without a store accepted")
	}
	// An explicit integer offset needs no store (it is pure visit
	// order) and must not change a sweep's artefacts.
	if testing.Short() {
		return
	}
	plain, offset := t.TempDir(), t.TempDir()
	if err := run([]string{"-scale", "quick", "-only", "fig7", "-out", plain}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "quick", "-only", "fig7", "-shard-offset", "2",
		"-cache-dir", t.TempDir(), "-lease-ttl", "1m", "-out", offset}, &out); err != nil {
		t.Fatal(err)
	}
	a, b := readArtefacts(t, plain), readArtefacts(t, offset)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("artefact sets differ: %d vs %d", len(a), len(b))
	}
	for name, want := range a {
		if !bytes.Equal(want, b[name]) {
			t.Fatalf("%s differs under -shard-offset (scheduling changed results)", name)
		}
	}
}

// TestStoreErrorsFlagValidation: the policy flag parses strictly, and
// -reconcile demands the tiered store whose journal it flushes.
func TestStoreErrorsFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-store-errors", "bogus", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-store-errors bogus accepted")
	}
	if err := run([]string{"-reconcile", "-out", t.TempDir()}, &out); err == nil {
		t.Error("-reconcile without a store accepted")
	}
	if err := run([]string{"-reconcile", "-cache-dir", t.TempDir(), "-out", t.TempDir()}, &out); err == nil {
		t.Error("-reconcile with only a local store accepted (nothing to replay to)")
	}
}

// TestDegradedRunThenReconcile is the operator's outage story end to
// end through the CLI: a run whose daemon is unreachable completes via
// the local tier (deferring its writes and printing the resilience stats
// line), and a later -reconcile run against the recovered daemon
// replays the journal.
func TestDegradedRunThenReconcile(t *testing.T) {
	cacheDir := t.TempDir()
	outDir := t.TempDir()

	// Phase 1: the daemon is down (a closed loopback port refuses
	// instantly). The run must still produce its artefact.
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "fig3c",
		"-store-url", "http://127.0.0.1:1", "-cache-dir", cacheDir,
		"-store-errors", "degrade", "-out", outDir}
	if err := run(args, &out); err != nil {
		t.Fatalf("degraded run failed: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(filepath.Join(outDir, "fig3_a100_max.txt")); err != nil {
		t.Fatalf("degraded run produced no artefact: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "resilience:") || !strings.Contains(s, "deferred") {
		t.Fatalf("no resilience stats line after a degraded run:\n%s", s)
	}

	// Phase 2: the daemon is back; -reconcile flushes the journal.
	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(storenet.NewServer(backing))
	defer srv.Close()
	out.Reset()
	if err := run([]string{"-reconcile", "-store-url", srv.URL,
		"-cache-dir", cacheDir, "-out", t.TempDir()}, &out); err != nil {
		t.Fatalf("-reconcile: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "reconcile: replayed") {
		t.Fatalf("no reconcile report:\n%s", out.String())
	}
	if backing.Len() == 0 {
		t.Fatal("reconcile replayed nothing to the recovered daemon")
	}
	if strings.Contains(out.String(), "[fig3c") {
		t.Fatal("-reconcile generated artefacts; it must flush and exit")
	}
}

// TestStoreTokenFlag: -store-token needs a daemon to authenticate to,
// and when one is there the token threads through to every store
// request — a write-scope token completes a sweep against an authed
// daemon, a read-only one aborts it with the terminal auth error.
func TestStoreTokenFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-store-token", "x", "-out", t.TempDir()}, &out); err == nil ||
		!strings.Contains(err.Error(), "-store-token") {
		t.Errorf("-store-token without -store-url: err=%v, want a -store-token error", err)
	}
	if err := run([]string{"-store-token", "x", "-store-url", "http://127.0.0.1:1",
		"-no-cache", "-out", t.TempDir()}, &out); err == nil ||
		!strings.Contains(err.Error(), "-store-token") {
		t.Errorf("-store-token with -no-cache: err=%v, want a -store-token error", err)
	}

	backing, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	auth := storenet.NewTokenSet().
		Grant("sweeper", storenet.ScopeWrite, storenet.TokenLimits{}).
		Grant("viewer", storenet.ScopeRead, storenet.TokenLimits{})
	srv := httptest.NewServer(storenet.NewServerWith(backing, storenet.ServerOptions{Auth: auth}))
	defer srv.Close()

	out.Reset()
	if err := run([]string{"-scale", "quick", "-only", "fig3c", "-store-url", srv.URL,
		"-store-token", "sweeper", "-out", t.TempDir()}, &out); err != nil {
		t.Fatalf("authed sweep: %v\n%s", err, out.String())
	}
	if backing.Len() != 1 {
		t.Fatalf("authed sweep stored %d blobs, want 1", backing.Len())
	}

	// Scope ceilings surface as the terminal auth error: -gc needs
	// admin, so the write-scope token's GC request aborts the run with
	// ErrAuth (suite cache writes are fire-and-forget by design, so the
	// GC verb is where an under-scoped token reliably fails).
	out.Reset()
	err = run([]string{"-scale", "quick", "-only", "table1", "-store-url", srv.URL,
		"-store-token", "sweeper", "-gc", "-max-store-bytes", "1", "-out", t.TempDir()}, &out)
	if err == nil || !errors.Is(err, storenet.ErrAuth) {
		t.Fatalf("under-scoped -gc err = %v, want ErrAuth\n%s", err, out.String())
	}
	if backing.Len() != 1 {
		t.Fatalf("refused GC still evicted: %d blobs left", backing.Len())
	}
}

// TestStoreURLListValidation: the replication flags fail fast — a
// replica count below one, a -replication override without a member
// list to spread over, and a list with an empty member.
func TestStoreURLListValidation(t *testing.T) {
	var out bytes.Buffer
	cases := []struct{ args, want string }{
		{"-replication 0 -store-url http://a:1,http://b:1", "-replication"},
		{"-replication 3 -store-url http://127.0.0.1:1", "-replication"},
		{"-store-url http://a:1,,http://b:1", "empty member"},
	}
	for _, c := range cases {
		err := run(append(strings.Fields(c.args), "-out", t.TempDir()), &out)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%s) err = %v, want %q", c.args, err, c.want)
		}
	}
}

// TestStoreURLListRouter: a comma-separated -store-url list replicates
// the sweep's blobs across the member daemons — the single campaign of
// fig3c lands on exactly -replication of the three members — and the
// run reports the router summary plus one health line per member. A
// dead member does not fail the run; it shows up in the health lines.
func TestStoreURLListRouter(t *testing.T) {
	backings := make([]*store.Store, 3)
	urls := make([]string, 3)
	for i := range backings {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(storenet.NewServer(st))
		defer srv.Close()
		backings[i], urls[i] = st, srv.URL
	}

	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-only", "fig3c",
		"-store-url", strings.Join(urls, ","), "-replication", "2",
		"-out", t.TempDir()}, &out); err != nil {
		t.Fatalf("replicated sweep: %v\n%s", err, out.String())
	}
	total := 0
	for _, st := range backings {
		total += st.Len()
	}
	if total != 2 {
		t.Fatalf("campaign blob on %d member copies, want 2 (r=2)\n%s", total, out.String())
	}
	if s := out.String(); !strings.Contains(s, "router: 3/3 members healthy, r=2") {
		t.Fatalf("no router summary line:\n%s", s)
	}
	if got := strings.Count(out.String(), "  member "); got != 3 {
		t.Fatalf("%d member health lines, want 3:\n%s", got, out.String())
	}

	// One member gone: a fresh sweep (new seed, so the campaign really
	// computes and writes) still completes — writes fail over inside the
	// router — and the dead member's health line shows it holds nothing.
	// (Whether the line says healthy or unreachable depends on when its
	// breaker trips, so the assertion is the blob count, which always
	// degrades to zero.)
	out.Reset()
	before := backings[0].Len() + backings[1].Len()
	deadList := urls[0] + "," + urls[1] + ",http://127.0.0.1:1"
	if err := run([]string{"-scale", "quick", "-only", "fig3c", "-seed", "7",
		"-store-url", deadList, "-replication", "2",
		"-out", t.TempDir()}, &out); err != nil {
		t.Fatalf("sweep with a dead member: %v\n%s", err, out.String())
	}
	if after := backings[0].Len() + backings[1].Len(); after <= before {
		t.Fatalf("dead-member sweep persisted nothing to the live members (%d -> %d)\n%s",
			before, after, out.String())
	}
	if s := out.String(); !strings.Contains(s, "member http://127.0.0.1:1: ") ||
		!strings.Contains(s, ", 0 blobs") {
		t.Fatalf("dead member's health line missing or non-empty:\n%s", s)
	}
}
