package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedArtefacts(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "table1,fig1,fig2,cidegen", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.md", "fig1_cpu_trace.txt", "fig2_acc_trace.txt", "ci_degeneration.md"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if !strings.Contains(out.String(), "[table1  ]") {
		t.Fatalf("progress log:\n%s", out.String())
	}
	// Unselected artefacts must not appear.
	if _, err := os.Stat(filepath.Join(dir, "table2.md")); !os.IsNotExist(err) {
		t.Fatal("table2.md generated despite -only filter")
	}
}

func TestRunTable1Content(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GH200", "A100", "RTX Quadro 6000", "132", "108", "72"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("table1.md missing %q:\n%s", want, data)
		}
	}
}

// readArtefacts returns name → contents for every file in dir.
func readArtefacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestCacheDeterminism is the acceptance contract of the persistent
// store: a repeated -cache-dir run performs zero campaign recomputation
// (the cache stats line reports no misses) and emits byte-identical
// artefacts to the cold run. fig3c exercises a single-campaign artefact,
// fig7 the fleet-sharded four-unit A100 sweep.
func TestCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five quick A100 campaigns")
	}
	cache := t.TempDir()
	coldDir, warmDir := t.TempDir(), t.TempDir()
	base := []string{"-scale", "quick", "-only", "fig3c,fig7", "-cache-dir", cache}

	var coldOut bytes.Buffer
	if err := run(append(base, "-out", coldDir), &coldOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(coldOut.String(), " 0 hits") {
		t.Fatalf("cold run should start from an empty store:\n%s", coldOut.String())
	}

	var warmOut bytes.Buffer
	if err := run(append(base, "-out", warmDir), &warmOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warmOut.String(), " 0 misses, 0 writes") {
		t.Fatalf("warm run recomputed campaigns:\n%s", warmOut.String())
	}

	cold, warm := readArtefacts(t, coldDir), readArtefacts(t, warmDir)
	if len(cold) == 0 || len(cold) != len(warm) {
		t.Fatalf("artefact sets differ: %d cold, %d warm", len(cold), len(warm))
	}
	for name, want := range cold {
		got, ok := warm[name]
		if !ok {
			t.Fatalf("warm run missing %s", name)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s differs between cold and warm runs", name)
		}
	}
}

// TestNoCacheFlag: -no-cache must neither read nor write the store.
func TestNoCacheFlag(t *testing.T) {
	cache := t.TempDir()
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-scale", "quick", "-only", "fig3c", "-cache-dir", cache, "-no-cache", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "cache ") {
		t.Fatalf("-no-cache still reported store traffic:\n%s", out.String())
	}
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("-no-cache wrote %d entries to the cache dir", len(entries))
	}
}

func TestRunValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "medium"}, &out); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestGeneratorIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range generators {
		if seen[g.id] {
			t.Fatalf("duplicate generator id %q", g.id)
		}
		seen[g.id] = true
	}
	if len(generators) != 18 {
		t.Fatalf("generators = %d, want 18 artefacts", len(generators))
	}
}

func TestRunAllArtefactsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator at quick scale (~20 s)")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every generator produces at least one file; heatmaps and ranges
	// produce two (txt + csv).
	if len(entries) < len(generators) {
		t.Fatalf("artefact files = %d, want ≥ %d", len(entries), len(generators))
	}
	for _, name := range []string{
		"table2.md", "fig3_gh200_max.csv", "fig4_violins.txt",
		"fig5_scatter.csv", "fig7_ranges.txt", "fig9_boxplots.txt",
		"cluster_census.md", "cpu_vs_gpu.md", "ablations.md",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
