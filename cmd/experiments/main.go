// Command experiments regenerates every table and figure of the paper's
// evaluation section into a results directory: Markdown tables, text and
// CSV heatmaps, violin/box summaries, scatter exports, traces, and the
// §V-A / §VII-B / CPU-vs-GPU studies. See DESIGN.md's per-experiment
// index for the artefact ↔ module map.
//
// Usage:
//
//	experiments [-scale quick|full] [-only <id>] [-out results/]
//	            [-cache-dir DIR] [-store-url URL[,URL...]] [-replication N]
//	            [-no-cache]
//	            [-fleet N] [-parallel N] [-lease-ttl D] [-owner ID]
//	            [-shard-offset N|auto] [-store-errors auto|abort|degrade]
//	            [-reconcile] [-trace-out FILE]
//	            [-gc] [-max-store-bytes N] [-max-store-age D]
//	            [-gc-watermark-bytes N]
//
// Artefact ids: table1 table2 fig1 fig2 fig3a fig3b fig3c fig3d fig4
// fig5 fig6 fig7 fig8 fig9 clusters cidegen cpuvsgpu (default: all).
//
// With -cache-dir, campaign results persist across runs as
// content-addressed blobs (see internal/store): a repeated run with the
// same scale and seed recomputes nothing and emits byte-identical
// artefacts, and after a config change or an interrupt only the missing
// campaigns run. -no-cache ignores the directory for one run.
//
// With -store-url, the store is a stored daemon instead of (or in front
// of) a local directory: campaigns read from and write to the daemon
// over HTTP (see internal/storenet), so runs on different hosts share
// one store. Combining -store-url with -cache-dir adds a local
// write-through tier: local hits skip the network, remote hits heal the
// local copy.
//
// A comma-separated -store-url list replicates instead: the store
// becomes a consistent-hashing router over every listed daemon (see
// internal/storenet/router), writing each campaign to its -replication
// preferred members (default 2) and failing reads and lease claims over
// to ring successors when a member is down. A single URL keeps the
// plain client path — the list form changes nothing until there is
// actually more than one member. With -cache-dir the directory is the
// router's local read-through tier. The end-of-run stats include a
// per-member health line.
//
// With -lease-ttl, multi-unit sweeps additionally claim each campaign
// through an advisory store lease before computing it, so several
// processes pointed at the same -cache-dir — or several hosts pointed
// at the same -store-url — partition a sweep instead of duplicating it
// (each still finishes with every result). -shard-offset starts this
// host's sweeps at a different shard index (give host i of n offset
// i*shards/n), so cooperating hosts claim disjoint ranges up front
// instead of all racing for shard 0; -shard-offset auto derives the
// start per sweep from the store's live lease and index state (the
// fleet.Plan LeaseHolder view). -gc bounds the store after
// the run: -max-store-bytes evicts least-recently-used blobs past the
// size cap, -max-store-age evicts blobs idle longer than the bound, and
// crash debris (orphaned temp files, expired leases) is swept either
// way; with -store-url the pass runs on the daemon's store.
// -gc-watermark-bytes instead bounds the store automatically: after any
// sweep that leaves it over the watermark, least-recently-used blobs
// are evicted back under it without operator action.
//
// -store-errors selects what a store write or claim failure does to a
// sweep: abort it, or degrade around it (unleased recompute on a failed
// claim, unpersisted in-memory result on a failed write). The default,
// auto, degrades exactly when the store has a local fallback tier
// (-store-url combined with -cache-dir) and aborts otherwise. A run
// that degraded prints a resilience stats line; writes the outage
// deferred into the local tier's pending journal are replayed to the
// daemon automatically when it returns, or explicitly with -reconcile,
// which flushes the journal and exits without generating artefacts.
//
// With -trace-out, the run records every fleet sweep as a span tree —
// one root span per sweep, one child span per shard (claim, compute,
// put events), plus a span per store-client wire operation — and writes
// the whole thing as Chrome trace_event JSON on exit. Load the file in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing to see where a
// sweep's wall-clock time went; each sweep also prints its trace ID and
// a per-shard timing table, and a stored daemon's /debug/ops flight
// recorder shows the same trace IDs against the requests it served.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"golatest/internal/core"
	"golatest/internal/experiments"
	"golatest/internal/fleet"
	"golatest/internal/obs"
	"golatest/internal/report"
	"golatest/internal/store"
	"golatest/internal/storenet"
	"golatest/internal/storenet/router"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type generator struct {
	id  string
	fn  func(*experiments.Suite, string, io.Writer) error
	doc string
}

var generators = []generator{
	{"table1", genTable1, "Table I — hardware setup"},
	{"table2", genTable2, "Table II — switching latency summary"},
	{"fig1", genFig1, "Fig. 1 — CPU transition trace"},
	{"fig2", genFig2, "Fig. 2 — CPU→ACC request trace"},
	{"fig3a", heatmapGen("gh200", experiments.AggMin), "Fig. 3a — GH200 min heatmap"},
	{"fig3b", heatmapGen("gh200", experiments.AggMax), "Fig. 3b — GH200 max heatmap"},
	{"fig3c", heatmapGen("a100", experiments.AggMax), "Fig. 3c — A100 max heatmap"},
	{"fig3d", heatmapGen("rtx6000", experiments.AggMax), "Fig. 3d — RTX max heatmap"},
	{"fig4", genFig4, "Fig. 4 — direction violins"},
	{"fig5", scatterGen(core.Pair{InitMHz: 1770, TargetMHz: 1260}, "fig5"), "Fig. 5 — multi-cluster scatter"},
	{"fig6", scatterGen(core.Pair{InitMHz: 705, TargetMHz: 1095}, "fig6"), "Fig. 6 — single-cluster scatter"},
	{"fig7", rangeGen(experiments.AggMin, "fig7"), "Fig. 7 — A100 min ranges"},
	{"fig8", rangeGen(experiments.AggMax, "fig8"), "Fig. 8 — A100 max ranges"},
	{"fig9", genFig9, "Fig. 9 — per-unit boxplots"},
	{"clusters", genClusters, "§VII-B — cluster census"},
	{"cidegen", genCIDegen, "§V-A — CI degeneration"},
	{"cpuvsgpu", genCPUvsGPU, "§VII — CPU vs GPU scale"},
	{"ablations", genAblations, "ablations — ramp / detection band / sync error"},
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleFlag = fs.String("scale", "quick", "campaign scale: quick or full")
		only      = fs.String("only", "", "comma-separated artefact ids (default all)")
		outDir    = fs.String("out", "results", "output directory")
		seed      = fs.Uint64("seed", 2025, "campaign seed")
		parallel  = fs.Int("parallel", 0, "concurrent pair campaigns per sweep (0 = one per CPU, 1 = serial; results are identical at every setting)")
		cacheDir  = fs.String("cache-dir", "", "persist campaign results as content-addressed blobs in this directory; warm re-runs recompute nothing")
		storeURL  = fs.String("store-url", "", "use stored daemon(s) as the campaign store: one base URL (e.g. http://host:8417), or a comma-separated list to replicate across a consistent-hashing router; with -cache-dir the directory becomes a local write-through (single URL) or read-through (list) tier")
		replicas  = fs.Int("replication", 2, "with a multi-member -store-url list: copies of each campaign blob to keep (clamped to the member count)")
		storeTok  = fs.String("store-token", "", "bearer token for a -store-url daemon running with -tokens (needs write scope for sweeps; 401/403 are terminal — fix the token, they are never retried or journaled)")
		noCache   = fs.Bool("no-cache", false, "ignore -cache-dir and -store-url for this run: neither read nor write any store")
		fleetN    = fs.Int("fleet", 0, "concurrent whole campaigns in multi-unit sweeps (0 = one per CPU; results are identical at every setting)")
		leaseTTL  = fs.Duration("lease-ttl", 0, "claim sweep shards via store leases so concurrent processes sharing -cache-dir partition the work; the TTL should exceed one campaign's runtime (0 = off)")
		owner     = fs.String("owner", "", "lease owner id for -lease-ttl (default: derived from host and pid)")
		shardOff  = fs.String("shard-offset", "", "start multi-unit sweeps at this shard index so cooperating hosts claim disjoint ranges (an integer, or 'auto' to derive it from the store's lease/index state; default 0)")
		gc        = fs.Bool("gc", false, "after the run, garbage-collect the store per -max-store-bytes/-max-store-age and sweep crash debris")
		maxBytes  = fs.Int64("max-store-bytes", 0, "with -gc: evict least-recently-used blobs until the store fits this many bytes (0 = no size bound)")
		maxAge    = fs.Duration("max-store-age", 0, "with -gc: evict blobs not accessed for longer than this (0 = no age bound)")
		watermark = fs.Int64("gc-watermark-bytes", 0, "run a size-bounded GC pass automatically after any sweep that leaves the store over this many bytes (0 = off)")
		storeErrs = fs.String("store-errors", "auto", "sweep response to store write/claim failures: abort, degrade (finish the sweep via the local tier), or auto (degrade exactly when a local fallback tier exists)")
		reconcile = fs.Bool("reconcile", false, "replay the local tier's pending journal (writes deferred during a daemon outage) to -store-url, print what was flushed, and exit")
		traceOut  = fs.String("trace-out", "", "record fleet sweeps and store-client operations as spans and write them to this file as Chrome trace_event JSON (view in Perfetto or chrome://tracing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale := experiments.ScaleQuick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	// The tracer is shared by the suite's fleet sweeps and the store
	// client, so sweep shards and the wire requests they issue land in
	// one trace. Seeded from the campaign seed: same run, same span IDs.
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.New(obs.Options{Seed: *seed})
	}

	// The backend is (in order of preference) a stored daemon with an
	// optional local write-through tier, a local store directory, or
	// nothing. A nil backend must stay a true nil interface — a typed
	// nil would defeat every Store != nil check downstream.
	var backend store.Backend
	var localStore *store.Store
	if *cacheDir != "" && !*noCache {
		var err error
		if localStore, err = store.Open(*cacheDir); err != nil {
			return err
		}
		backend = localStore
	}
	var memberURLs []string
	if *storeURL != "" {
		for _, u := range strings.Split(*storeURL, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				return fmt.Errorf("-store-url %q: empty member in list", *storeURL)
			}
			memberURLs = append(memberURLs, u)
		}
	}
	if *replicas < 1 {
		return fmt.Errorf("-replication must be at least 1, got %d", *replicas)
	}
	if *replicas != 2 && len(memberURLs) < 2 {
		return fmt.Errorf("-replication needs a comma-separated multi-member -store-url list (one daemon holds one copy)")
	}
	// Client and router diagnostics (breaker edges, failovers, reconcile
	// replays) go to stderr as structured lines; artefact output stays on
	// out.
	diagLog := slog.New(slog.NewTextHandler(os.Stderr, nil))
	switch {
	case len(memberURLs) == 1 && !*noCache:
		// One daemon: the plain client path, with -cache-dir as its
		// write-through tier. Identical to the pre-list behavior.
		client, err := storenet.NewClient(memberURLs[0], storenet.ClientOptions{
			Cache:  localStore,
			Token:  *storeTok,
			Tracer: tracer,
			Logger: diagLog,
		})
		if err != nil {
			return err
		}
		backend = client
	case len(memberURLs) > 1 && !*noCache:
		// Several daemons: cache-less clients under a replicating router.
		// The local tier (if any) belongs to the router, not to any one
		// member — a member's copy must mean that member has the bytes.
		members := make([]store.Backend, 0, len(memberURLs))
		for _, u := range memberURLs {
			c, err := storenet.NewClient(u, storenet.ClientOptions{
				Token:  *storeTok,
				Tracer: tracer,
				Logger: diagLog,
			})
			if err != nil {
				return fmt.Errorf("-store-url member %s: %w", u, err)
			}
			members = append(members, c)
		}
		rt, err := router.New(members, router.Options{
			Replication: *replicas,
			Local:       localStore,
			Seed:        *seed,
			Tracer:      tracer,
			Logger:      diagLog,
		})
		if err != nil {
			return err
		}
		backend = rt
	}
	if *storeTok != "" && (*storeURL == "" || *noCache) {
		return fmt.Errorf("-store-token needs -store-url (and no -no-cache): there is no daemon to authenticate to")
	}

	shardOffset, autoOffset := 0, false
	switch *shardOff {
	case "":
	case "auto":
		autoOffset = true
		// Auto mode consumes the fleet.Plan lease/index view, which the
		// sweep only owns in lease mode; without -lease-ttl it would be
		// silently inert — the offset stuck at 0, contention unchanged.
		if *leaseTTL <= 0 {
			return fmt.Errorf("-shard-offset auto requires -lease-ttl (the plan it consults is the lease-mode sweep's)")
		}
	default:
		n, err := strconv.Atoi(*shardOff)
		if err != nil {
			return fmt.Errorf("-shard-offset %q: want an integer or 'auto'", *shardOff)
		}
		shardOffset = n
	}

	var storeErrors fleet.StoreErrorPolicy
	switch *storeErrs {
	case "", "auto":
		storeErrors = fleet.StoreErrorsAuto
	case "abort":
		storeErrors = fleet.StoreErrorsAbort
	case "degrade":
		storeErrors = fleet.StoreErrorsDegrade
	default:
		return fmt.Errorf("-store-errors %q: want auto, abort, or degrade", *storeErrs)
	}

	if *reconcile {
		r, ok := backend.(store.Resilient)
		if !ok || !r.CanDegrade() {
			return fmt.Errorf("-reconcile requires -store-url with -cache-dir (the pending journal lives in the local tier)")
		}
		before := r.Resilience()
		n, err := r.Reconcile()
		fmt.Fprintf(out, "reconcile: replayed %d blobs to %s, %d pending\n",
			n, backend.Location(), r.Resilience().Pending)
		if err != nil {
			return fmt.Errorf("reconcile (after %d of %d pending): %w", n, before.Pending, err)
		}
		return nil
	}

	if backend == nil {
		needsStore := ""
		switch {
		case *leaseTTL > 0:
			// Covers -shard-offset auto too: auto already demanded
			// -lease-ttl above, so this case is the one it reaches.
			needsStore = "-lease-ttl"
		case *gc:
			needsStore = "-gc"
		case *watermark > 0:
			needsStore = "-gc-watermark-bytes"
		}
		if needsStore != "" {
			if *noCache && (*cacheDir != "" || *storeURL != "") {
				return fmt.Errorf("%s conflicts with -no-cache (the run would not open the store)", needsStore)
			}
			return fmt.Errorf("%s requires -cache-dir or -store-url (leases and GC live in the store)", needsStore)
		}
	}

	suite := experiments.NewSuite(experiments.Options{
		Scale:            scale,
		Seed:             *seed,
		Parallelism:      *parallel,
		Store:            backend,
		FleetReplicas:    *fleetN,
		LeaseTTL:         *leaseTTL,
		LeaseOwner:       *owner,
		GCWatermarkBytes: *watermark,
		ShardOffset:      shardOffset,
		AutoShardOffset:  autoOffset,
		StoreErrors:      storeErrors,
		Tracer:           tracer,
	})
	for _, g := range generators {
		if len(wanted) > 0 && !wanted[g.id] {
			continue
		}
		start := time.Now()
		if err := g.fn(suite, *outDir, out); err != nil {
			return fmt.Errorf("%s: %w", g.id, err)
		}
		fmt.Fprintf(out, "[%-8s] %-40s %8.2fs\n", g.id, g.doc, time.Since(start).Seconds())
	}
	if backend != nil {
		c := backend.Counters()
		fmt.Fprintf(out, "cache %s: %d hits, %d misses, %d writes, %d blobs\n",
			backend.Location(), c.Hits, c.Misses, c.Puts, backend.Len())
		if *leaseTTL > 0 {
			ct := suite.Contention()
			fmt.Fprintf(out, "leases: %d claimed, %d waited, %d stolen\n",
				ct.Claimed, ct.Waited, ct.Stolen)
		}
		// The resilience line only appears when an outage was actually
		// absorbed somewhere — a clean run stays clean.
		if r, ok := backend.(store.Resilient); ok {
			rs, sr := r.Resilience(), suite.Resilience()
			if rs.Degraded+rs.Deferred+rs.Reconciled+rs.Pending+sr.Degraded > 0 {
				fmt.Fprintf(out, "resilience: %d degraded reads, %d deferred writes, %d reconciled, %d pending; %d sweep fallbacks\n",
					rs.Degraded, rs.Deferred, rs.Reconciled, rs.Pending, sr.Degraded)
			}
		}
		if *gc {
			gs, err := backend.GC(store.GCPolicy{MaxBytes: *maxBytes, MaxAge: *maxAge})
			if err != nil {
				return fmt.Errorf("gc: %w", err)
			}
			fmt.Fprintf(out, "gc: evicted %d of %d blobs, %d -> %d bytes, swept %d tmp + %d leases\n",
				gs.Evicted, gs.Scanned, gs.BytesBefore, gs.BytesAfter,
				gs.TmpRemoved, gs.LeasesRemoved)
		}
		// The wire-level telemetry line mirrors what the client's span
		// stream and the daemon's /metrics see; printed only when the run
		// actually went over the network.
		if c, ok := backend.(*storenet.Client); ok {
			tel := c.Telemetry()
			fmt.Fprintf(out, "client: %d retries, %d rate-limited, %d breaker opens, %d deferred, %d replayed, %d KiB out, %d KiB in\n",
				tel.Retries, tel.RateLimited, tel.BreakerOpened, tel.DeferredPuts,
				tel.ReconcileReplays, tel.BytesSent/1024, tel.BytesReceived/1024)
		}
		// The replication lines mirror the router's counters: one summary,
		// then one health line per member so an operator sees at a glance
		// which daemon a degraded run routed around.
		if rt, ok := backend.(*router.Router); ok {
			rs := rt.ReplicationStats()
			fmt.Fprintf(out, "router: %d/%d members healthy, r=%d, %d failovers, %d under-replicated puts, %d read repairs, %d pending\n",
				rs.Healthy, rs.Members, rs.Replication, rs.Failovers,
				rs.UnderReplicatedPuts, rs.ReadRepairs, rs.PendingRepairs)
			for _, m := range rt.MemberHealth() {
				state := "healthy"
				if !m.Healthy {
					state = "unreachable"
				}
				fmt.Fprintf(out, "  member %s: %s, %d blobs\n", m.Location, state, m.Blobs)
			}
		}
	}
	if tracer != nil {
		for i, rep := range suite.SweepReports() {
			fmt.Fprintf(out, "sweep %d: trace %s, %d shards (%d hits, %d computed)\n",
				i, rep.TraceID, len(rep.Shards), rep.Hits, rep.Computed)
			if err := rep.WriteTimingTable(out); err != nil {
				return err
			}
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d spans -> %s\n", len(tracer.Snapshot()), *traceOut)
	}
	return nil
}

func writeFile(dir, name string, fill func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func genTable1(_ *experiments.Suite, dir string, _ io.Writer) error {
	return writeFile(dir, "table1.md", func(w io.Writer) error {
		return experiments.RenderTable1(w, experiments.Table1())
	})
}

func genTable2(s *experiments.Suite, dir string, _ io.Writer) error {
	rows, err := s.Table2()
	if err != nil {
		return err
	}
	return writeFile(dir, "table2.md", func(w io.Writer) error {
		return experiments.RenderTable2(w, rows)
	})
}

func genFig1(_ *experiments.Suite, dir string, _ io.Writer) error {
	trace, err := experiments.Fig1CPUTrace()
	if err != nil {
		return err
	}
	return writeFile(dir, "fig1_cpu_trace.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, experiments.RenderTrace(trace))
		return err
	})
}

func genFig2(_ *experiments.Suite, dir string, _ io.Writer) error {
	trace, err := experiments.Fig2GPUTrace()
	if err != nil {
		return err
	}
	return writeFile(dir, "fig2_acc_trace.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, experiments.RenderTrace(trace))
		return err
	})
}

func heatmapGen(key string, agg experiments.Agg) func(*experiments.Suite, string, io.Writer) error {
	return func(s *experiments.Suite, dir string, _ io.Writer) error {
		h, err := s.Fig3Heatmap(key, agg)
		if err != nil {
			return err
		}
		base := fmt.Sprintf("fig3_%s_%s", key, agg)
		if err := writeFile(dir, base+".txt", h.Render); err != nil {
			return err
		}
		return writeFile(dir, base+".csv", h.WriteCSV)
	}
}

func genFig4(s *experiments.Suite, dir string, _ io.Writer) error {
	panels, err := s.Fig4Violins()
	if err != nil {
		return err
	}
	return writeFile(dir, "fig4_violins.txt", func(w io.Writer) error {
		for _, p := range panels {
			fmt.Fprintf(w, "== %s ==\n", p.Model)
			if err := p.Increasing.Render(w, 48); err != nil {
				return err
			}
			if err := p.Decreasing.Render(w, 48); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	})
}

func scatterGen(pair core.Pair, base string) func(*experiments.Suite, string, io.Writer) error {
	return func(s *experiments.Suite, dir string, logw io.Writer) error {
		sc, err := s.FigScatter("gh200", pair, 300)
		if err != nil {
			return err
		}
		fmt.Fprintf(logw, "  %s %s: %d clusters, silhouette %.2f\n",
			base, pair, sc.NumClusters, sc.Silhouette)
		return writeFile(dir, base+"_scatter.csv", func(w io.Writer) error {
			return report.WriteScatterCSV(w, sc.SamplesMs, sc.OutlierFlag)
		})
	}
}

func rangeGen(agg experiments.Agg, base string) func(*experiments.Suite, string, io.Writer) error {
	return func(s *experiments.Suite, dir string, _ io.Writer) error {
		h, err := s.RangeHeatmap(agg)
		if err != nil {
			return err
		}
		if err := writeFile(dir, base+"_ranges.txt", h.Render); err != nil {
			return err
		}
		return writeFile(dir, base+"_ranges.csv", h.WriteCSV)
	}
}

func genFig9(s *experiments.Suite, dir string, _ io.Writer) error {
	boxes, err := s.Fig9Boxes(3)
	if err != nil {
		return err
	}
	return writeFile(dir, "fig9_boxplots.txt", func(w io.Writer) error {
		return report.RenderBoxes(w, boxes)
	})
}

func genClusters(s *experiments.Suite, dir string, _ io.Writer) error {
	rows, err := s.ClusterCensus()
	if err != nil {
		return err
	}
	return writeFile(dir, "cluster_census.md", func(w io.Writer) error {
		header := []string{"Model", "Pairs sampled", "Single-cluster share",
			"Max clusters", "Mean silhouette (multi)"}
		var data [][]string
		for _, r := range rows {
			data = append(data, []string{
				r.Model, fmt.Sprint(r.Pairs),
				fmt.Sprintf("%.0f%%", 100*r.SingleClusterShare),
				fmt.Sprint(r.MaxClusters),
				fmt.Sprintf("%.2f", r.MeanSilhouette),
			})
		}
		return report.MarkdownTable(w, header, data)
	})
}

func genCIDegen(_ *experiments.Suite, dir string, _ io.Writer) error {
	rows, err := experiments.CIDegeneration([]int{50, 200, 800, 3200, 12800})
	if err != nil {
		return err
	}
	return writeFile(dir, "ci_degeneration.md", func(w io.Writer) error {
		header := []string{"Phase-1 n", "CI band [µs]", "In-band share", "Mean detect iters", "Failed"}
		var data [][]string
		for _, r := range rows {
			data = append(data, []string{
				fmt.Sprint(r.N), fmt.Sprintf("%.4f", r.BandUs),
				fmt.Sprintf("%.1f%%", 100*r.InBandShare),
				fmt.Sprintf("%.1f", r.MeanDetectIters), fmt.Sprint(r.FailedDetections),
			})
		}
		return report.MarkdownTable(w, header, data)
	})
}

func genAblations(_ *experiments.Suite, dir string, _ io.Writer) error {
	ramp, err := experiments.RampAblation([]int{0, 2, 8, 32}, 12)
	if err != nil {
		return err
	}
	det, err := experiments.DetectionAblation(12)
	if err != nil {
		return err
	}
	syn, err := experiments.SyncAblation([]float64{0, 100, 400, 1600}, 10)
	if err != nil {
		return err
	}
	return writeFile(dir, "ablations.md", func(w io.Writer) error {
		fmt.Fprintln(w, "## Transition shape (ramp steps)")
		if err := report.MarkdownTable(w,
			[]string{"Ramp steps", "Mean err [ms]", "Max err [ms]", "Discard share"},
			rowsOf(len(ramp), func(i int) []string {
				r := ramp[i]
				return []string{fmt.Sprint(r.RampSteps), fmt.Sprintf("%.3f", r.MeanErrMs),
					fmt.Sprintf("%.3f", r.MaxErrMs), fmt.Sprintf("%.2f", r.FailShare)}
			})); err != nil {
			return err
		}
		fmt.Fprintln(w, "\n## Detection band (2σ population vs CI of the mean)")
		if err := report.MarkdownTable(w,
			[]string{"Mode", "Accepted share", "Mean err [ms]"},
			rowsOf(len(det), func(i int) []string {
				r := det[i]
				return []string{r.Mode, fmt.Sprintf("%.2f", r.AcceptedShare),
					fmt.Sprintf("%.3f", r.MeanErrMs)}
			})); err != nil {
			return err
		}
		fmt.Fprintln(w, "\n## Timer-sync link asymmetry")
		if err := report.MarkdownTable(w,
			[]string{"Asymmetry [µs]", "Mean bias [ms]"},
			rowsOf(len(syn), func(i int) []string {
				r := syn[i]
				return []string{fmt.Sprintf("%.0f", r.AsymmetryUs), fmt.Sprintf("%.3f", r.MeanBiasMs)}
			})); err != nil {
			return err
		}
		cores, err := experiments.CoreCountStudy([]int{1, 4, 16, 64}, 10)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n## Core count vs detection band (§V-A small accelerators)")
		return report.MarkdownTable(w,
			[]string{"Cores", "Phase-1 n", "CI accepted", "2σ accepted"},
			rowsOf(len(cores), func(i int) []string {
				r := cores[i]
				return []string{fmt.Sprint(r.Cores), fmt.Sprint(r.Phase1N),
					fmt.Sprintf("%.2f", r.CIAcceptedShare),
					fmt.Sprintf("%.2f", r.SigmaAcceptedShare)}
			}))
	})
}

func rowsOf(n int, f func(int) []string) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func genCPUvsGPU(s *experiments.Suite, dir string, _ io.Writer) error {
	rows, err := s.CPUvsGPU()
	if err != nil {
		return err
	}
	return writeFile(dir, "cpu_vs_gpu.md", func(w io.Writer) error {
		header := []string{"Platform", "Median [ms]", "Max [ms]"}
		var data [][]string
		for _, r := range rows {
			data = append(data, []string{
				r.Platform, fmt.Sprintf("%.3f", r.MedianMs), fmt.Sprintf("%.3f", r.MaxMs),
			})
		}
		return report.MarkdownTable(w, header, data)
	})
}
