// Command stored serves a campaign store directory over HTTP, so fleets
// spanning hosts share one content-addressed store: blobs, the
// compare-and-swap lease protocol, the index, and GC all travel the
// small versioned API in internal/storenet. Point clients at it with
// `experiments -store-url http://host:8417` (optionally adding a local
// `-cache-dir` write-through tier per host).
//
// Usage:
//
//	stored -dir DIR [-addr HOST:PORT] [-stats-every D]
//	       [-gc-every D] [-gc-watermark-bytes N] [-max-store-age D]
//	       [-drain-grace D] [-tokens FILE] [-cert FILE -key FILE]
//	       [-log-level debug|info|warn|error]
//
// With -tokens, the daemon is multi-tenant: every /v1 request must
// carry an Authorization: Bearer token from the file, which grants a
// scope (read/write/admin), optional per-token rate and byte quotas
// (throttled requests get 429 + Retry-After), and an optional validity
// window (nbf=/expires=, RFC 3339): a token used before its nbf or at
// or past its expires is rejected 401 exactly like an unknown one.
// /healthz, /readyz, and /metrics always answer without a token —
// probes and scrapers are unauthenticated by design. SIGHUP re-reads
// the -tokens file and swaps the credential set in place — no listener
// drop, no probe blip; a file that fails to parse is logged and the
// previous tokens stay in force. Expiry plus SIGHUP is the rotation
// story: ship the successor token early with nbf at the cutover, give
// the old token an expires shortly after, reload once, and each
// credential activates and lapses on schedule.
// With -cert/-key the daemon serves HTTPS.
// GET /metrics exports Prometheus-format store gauges and per-endpoint
// request/latency histograms.
//
// The directory is an ordinary internal/store directory: local
// processes may keep sharing it by path while remote clients go through
// the daemon — both coordinate through the same journal and lease files.
// With -gc-every, the daemon garbage-collects its store in the
// background: every period it evicts least-recently-used blobs past
// -gc-watermark-bytes and blobs idle longer than -max-store-age, and
// sweeps crash debris (orphaned staging files, expired leases).
// With -stats-every, the daemon periodically logs one /v1/stats-backed
// line — blob count, on-disk and raw bytes with the compression ratio,
// traffic counters, lease churn, and the p50/p99 request-latency
// estimates — so fleet health is visible from the daemon's log without
// shelling into the store host.
//
// All daemon output is structured log/slog text (key=value); -log-level
// debug adds one line per /v1 request carrying the method, path,
// status, latency, and the client's trace ID when the request carried a
// W3C traceparent header. The same records (the last 256) are served as
// JSON from GET /debug/ops, and Go runtime profiles from
// GET /debug/pprof/... — both admin-scoped when -tokens is set, so
// profiling a production daemon needs an admin credential but never a
// restart.
//
// The daemon serves k8s-style probes outside the versioned API:
// GET /healthz is liveness (the process answers), GET /readyz is
// readiness (the store directory accepts writes and the daemon is not
// draining). On SIGINT/SIGTERM it exits cleanly: readiness flips to 503
// immediately, the optional -drain-grace window lets balancers route
// traffic away, then in-flight requests finish before the listener
// closes. State lives entirely in the store directory, so a
// restarted daemon resumes where the last one stopped — even leases
// granted by the previous incarnation renew correctly (the lease token
// is verified against the on-disk file, not an in-memory table).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"golatest/internal/store"
	"golatest/internal/storenet"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	d, err := newDaemon(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stored:", err)
		os.Exit(2)
	}
	if err := d.serve(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "stored:", err)
		os.Exit(1)
	}
}

// daemon is one configured stored instance; split from main so tests
// drive it against a loopback listener and a cancellable context.
type daemon struct {
	st         *store.Store
	srv        *storenet.Server
	ln         net.Listener
	gcEvery    time.Duration
	statsEvery time.Duration
	drainGrace time.Duration
	policy     store.GCPolicy
	certFile   string // with keyFile: serve TLS
	keyFile    string
	auth       *storenet.TokenSet // nil = open mode
	tokensPath string             // re-read on SIGHUP

	// log is the daemon's structured logger (slog text lines on the
	// configured output). The handler serializes concurrent records, so
	// the GC/stats loops need no extra locking.
	log *slog.Logger
}

// newDaemon parses flags, opens the store, and binds the listener —
// everything that can fail fast does so here, before main commits to
// serving.
func newDaemon(args []string, out io.Writer) (*daemon, error) {
	fs := flag.NewFlagSet("stored", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir        = fs.String("dir", "", "store directory to serve (required; created if missing)")
		addr       = fs.String("addr", "127.0.0.1:8417", "listen address (use :0 for an ephemeral port; the chosen address is printed)")
		gcEvery    = fs.Duration("gc-every", 0, "period of the background GC pass over the served store (0 = no background GC)")
		watermark  = fs.Int64("gc-watermark-bytes", 0, "with -gc-every: evict least-recently-used blobs until the store fits this many bytes (0 = no size bound)")
		maxAge     = fs.Duration("max-store-age", 0, "with -gc-every: evict blobs not accessed for longer than this (0 = no age bound)")
		statsEvery = fs.Duration("stats-every", 0, "period of the stats log line (blobs, bytes, compression ratio, traffic, lease churn; 0 = off)")
		drainGrace = fs.Duration("drain-grace", 0, "on SIGINT/SIGTERM, keep serving for this long with /readyz answering 503 before shutting down (lets load balancers route traffic away; 0 = drain immediately)")
		tokens     = fs.String("tokens", "", "bearer-token file enabling multi-tenant auth: one '<token> <scopes> [rps=N] [burst=N] [bps=N] [bburst=N] [nbf=RFC3339] [expires=RFC3339]' per line (scopes: read, write, admin; nbf/expires bound the token's validity window; empty = open mode)")
		certFile   = fs.String("cert", "", "TLS certificate file (PEM); with -key, serve HTTPS")
		keyFile    = fs.String("key", "", "TLS private key file (PEM); with -cert, serve HTTPS")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn, error (debug adds a per-request line carrying the client's trace ID)")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn, or error", *logLevel)
	}
	if (*watermark > 0 || *maxAge > 0) && *gcEvery <= 0 {
		return nil, fmt.Errorf("-gc-watermark-bytes/-max-store-age need -gc-every to schedule the pass")
	}
	if (*certFile == "") != (*keyFile == "") {
		return nil, fmt.Errorf("-cert and -key must be given together")
	}
	var auth *storenet.TokenSet
	if *tokens != "" {
		var err error
		if auth, err = storenet.LoadTokens(*tokens); err != nil {
			return nil, err
		}
	}
	st, err := store.Open(*dir)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return nil, err
	}
	logger := slog.New(slog.NewTextHandler(out, &slog.HandlerOptions{Level: lvl}))
	return &daemon{
		st:         st,
		srv:        storenet.NewServerWith(st, storenet.ServerOptions{Auth: auth, Logger: logger}),
		ln:         ln,
		gcEvery:    *gcEvery,
		statsEvery: *statsEvery,
		drainGrace: *drainGrace,
		policy:     store.GCPolicy{MaxBytes: *watermark, MaxAge: *maxAge},
		certFile:   *certFile,
		keyFile:    *keyFile,
		auth:       auth,
		tokensPath: *tokens,
		log:        logger,
	}, nil
}

// URL returns the served base URL — what clients pass as -store-url.
func (d *daemon) URL() string {
	scheme := "http"
	if d.certFile != "" {
		scheme = "https"
	}
	return scheme + "://" + d.ln.Addr().String()
}

// serve runs the daemon until the context is cancelled, then drains
// in-flight requests and returns nil.
func (d *daemon) serve(ctx context.Context) error {
	srv := &http.Server{Handler: d.srv}
	d.log.Info("serving",
		"dir", d.st.Dir(), "url", d.URL(),
		"api", storenet.APIVersion, "blobs", d.st.Len())
	if d.auth != nil {
		d.log.Info("auth tokens loaded", "count", d.auth.Len())
	}
	if d.gcEvery > 0 {
		go d.gcLoop(ctx)
	}
	if d.statsEvery > 0 {
		go d.statsLoop(ctx)
	}
	if d.tokensPath != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		defer signal.Stop(hup)
		go d.reloadLoop(ctx, hup)
	}
	errc := make(chan error, 1)
	go func() {
		if d.certFile != "" {
			errc <- srv.ServeTLS(d.ln, d.certFile, d.keyFile)
		} else {
			errc <- srv.Serve(d.ln)
		}
	}()
	select {
	case <-ctx.Done():
		// Two-phase drain: flip readiness first so probes and balancers
		// stop sending new traffic, keep serving through the grace
		// window, then Shutdown — which itself waits for in-flight
		// requests before closing.
		d.srv.SetDraining(true)
		if d.drainGrace > 0 {
			d.log.Info("draining", "grace", d.drainGrace)
			time.Sleep(d.drainGrace)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-errc // always http.ErrServerClosed after Shutdown
		d.log.Info("shut down")
		return nil
	case err := <-errc:
		return err
	}
}

// reloadLoop re-reads the -tokens file on every SIGHUP and swaps the
// server's credential set atomically — credential rotation without a
// restart. The listener never drops and in-flight requests finish
// under the set that admitted them, so probes and balancers see
// nothing. A file that fails to load (deleted, malformed line) is
// logged and the previous tokens stay in force: a botched rotation
// must not lock the fleet out.
func (d *daemon) reloadLoop(ctx context.Context, hup <-chan os.Signal) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-hup:
			ts, err := storenet.LoadTokens(d.tokensPath)
			if err != nil {
				d.log.Warn("auth reload failed, keeping previous tokens", "error", err)
				continue
			}
			d.srv.SetAuth(ts)
			d.log.Info("auth reloaded", "count", ts.Len(), "path", d.tokensPath)
		}
	}
}

// statsLoop logs one store-health line per period: what an operator
// would otherwise curl from /v1/stats, in the daemon's own log.
func (d *daemon) statsLoop(ctx context.Context) {
	t := time.NewTicker(d.statsEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.logStats()
		}
	}
}

// logStats emits the periodic health line — the /v1/stats snapshot,
// structured (storenet.Server.Stats is the single assembly point). The
// latency quantiles are the server's histogram-bucket estimates across
// all endpoints since start.
func (d *daemon) logStats() {
	st := d.srv.Stats()
	c, ls := st.Counters, st.Leases
	d.log.Info("stats",
		"blobs", st.Blobs, "bytes", st.Bytes, "raw_bytes", st.RawBytes,
		"compression", st.CompressionRatio,
		"hits", c.Hits, "misses", c.Misses, "puts", c.Puts, "corrupt", c.Corrupt,
		"acquired", ls.Acquired, "stolen", ls.Stolen, "busy", ls.Busy,
		"renewed", ls.Renewed, "released", ls.Released,
		"p50", time.Duration(st.LatencyP50Ns), "p99", time.Duration(st.LatencyP99Ns))
}

// gcLoop applies the daemon's GC policy on a timer. Every pass at least
// sweeps crash debris; the size/age bounds evict per the policy. Only
// passes that did something are logged.
func (d *daemon) gcLoop(ctx context.Context) {
	t := time.NewTicker(d.gcEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			gs, err := d.st.GC(d.policy)
			if err != nil {
				d.log.Warn("gc failed", "error", err)
				continue
			}
			if gs.Evicted > 0 || gs.TmpRemoved > 0 || gs.LeasesRemoved > 0 {
				d.log.Info("gc",
					"evicted", gs.Evicted, "scanned", gs.Scanned,
					"bytes_before", gs.BytesBefore, "bytes_after", gs.BytesAfter,
					"tmp_swept", gs.TmpRemoved, "leases_swept", gs.LeasesRemoved)
			}
		}
	}
}
