package main

import (
	"bytes"
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/json"
	"encoding/pem"
	"errors"
	"fmt"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/obs"
	"golatest/internal/store"
	"golatest/internal/storenet"
)

// syncBuffer lets the daemon's concurrent log writes race-safely meet
// the test's assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func startDaemon(t *testing.T, args ...string) (*daemon, *syncBuffer, func()) {
	t.Helper()
	out := &syncBuffer{}
	d, err := newDaemon(args, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	return d, out, stop
}

// TestDaemonServesStore: end to end through the real binary wiring — a
// storenet.Client round-trips a campaign through a stored instance on
// an ephemeral loopback port.
func TestDaemonServesStore(t *testing.T) {
	dir := t.TempDir()
	d, out, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0")

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705, 1410}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	res, ok := c.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("round trip: %+v ok=%v", res, ok)
	}

	// The daemon's stats endpoint agrees with its directory.
	resp, err := http.Get(d.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Blobs int `json:"blobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Blobs != 1 {
		t.Fatalf("stats = %+v err=%v", stats, err)
	}

	stop() // graceful shutdown must drain and report cleanly
	if !strings.Contains(out.String(), "msg=serving") ||
		!strings.Contains(out.String(), "dir="+dir) ||
		!strings.Contains(out.String(), `msg="shut down"`) {
		t.Fatalf("daemon log:\n%s", out.String())
	}

	// The state survived: a fresh local handle over the directory reads
	// what the daemon stored.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); !ok {
		t.Fatal("blob did not survive the daemon")
	}
}

// TestDaemonBackgroundGC: with -gc-every and a tiny watermark, the
// daemon evicts stored blobs on its own.
func TestDaemonBackgroundGC(t *testing.T) {
	dir := t.TempDir()
	d, _, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0",
		"-gc-every", "10ms", "-gc-watermark-bytes", "1")
	defer stop()

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.st.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background GC never evicted past the watermark")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if _, err := newDaemon([]string{}, &out); err == nil {
		t.Error("missing -dir accepted")
	}
	if _, err := newDaemon([]string{"-dir", t.TempDir(), "-gc-watermark-bytes", "1"}, &out); err == nil {
		t.Error("-gc-watermark-bytes without -gc-every accepted")
	}
	if _, err := newDaemon([]string{"-dir", t.TempDir(), "-addr", "not:an:addr"}, &out); err == nil {
		t.Error("bogus -addr accepted")
	}
}

// TestDaemonStatsLine: with -stats-every the daemon periodically logs
// the /v1/stats view — blobs, compressed vs raw bytes, traffic, lease
// churn — without any client asking for it.
func TestDaemonStatsLine(t *testing.T) {
	dir := t.TempDir()
	d, out, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0", "-stats-every", "10ms")
	defer stop()

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.TryAcquire(k.Digest, "host-a", time.Minute); err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, "msg=stats") && strings.Contains(s, "blobs=1") &&
			strings.Contains(s, "puts=1") && strings.Contains(s, "acquired=1") &&
			strings.Contains(s, "p50=") && strings.Contains(s, "p99=") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stats line with blob/put/lease counts and latency quantiles:\n%s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// probeStatus fetches a probe path and returns its status code.
func probeStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("probe %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestDaemonProbes covers the orchestration contract: /healthz answers
// 200 for the life of the process, /readyz answers 200 while serving,
// flips to 503 the moment a shutdown signal arrives (the -drain-grace
// window, during which the daemon still serves traffic), and reflects a
// store directory that stopped accepting writes.
func TestDaemonProbes(t *testing.T) {
	dir := t.TempDir()
	out := &syncBuffer{}
	d, err := newDaemon([]string{"-dir", dir, "-addr", "127.0.0.1:0", "-drain-grace", "750ms"}, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx) }()

	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", got)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", got)
	}

	// An unwritable store flips readiness but not liveness: restarting
	// the process would not fix the directory.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with the store dir gone = %d, want 503", got)
	}
	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz with the store dir gone = %d, want 200", got)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after the dir returned = %d, want 200", got)
	}

	// Shutdown: within the drain grace the daemon still serves — with
	// readiness already withdrawn.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for probeStatus(t, d.URL()+"/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after the shutdown signal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (still serving)", got)
	}
	if got := probeStatus(t, d.URL()+"/v1/stats"); got != http.StatusOK {
		t.Fatalf("API while draining = %d, want 200 (in-flight traffic must finish)", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "draining") {
		t.Fatalf("no drain log line:\n%s", s)
	}
}

// TestDaemonDebugEndpoints: the flight recorder and the profiling
// surface through real daemon wiring — and the tentpole's correlation
// contract: a warm remote Get is one client span whose trace identity
// matches exactly one server-side request record in /debug/ops.
func TestDaemonDebugEndpoints(t *testing.T) {
	d, _, stop := startDaemon(t, "-dir", t.TempDir(), "-addr", "127.0.0.1:0")
	defer stop()

	tr := obs.New(obs.Options{Seed: 99})
	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" { // the warm remote Get
		t.Fatalf("warm get: %+v ok=%v", res, ok)
	}

	// Exactly one client span named storenet.get, ending in a hit.
	var get *obs.SpanRecord
	for _, s := range tr.Snapshot() {
		if s.Name != "storenet.get" {
			continue
		}
		if get != nil {
			t.Fatal("more than one storenet.get span for one Get")
		}
		g := s
		get = &g
	}
	if get == nil {
		t.Fatal("no storenet.get span recorded")
	}

	// The flight recorder holds exactly one record carrying that span's
	// trace identity — the wire request the Get issued.
	resp, err := http.Get(d.URL() + "/debug/ops")
	if err != nil {
		t.Fatal(err)
	}
	var ops struct {
		Capacity int                  `json:"capacity"`
		Records  []storenet.OpsRecord `json:"records"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ops)
	resp.Body.Close()
	if err != nil || ops.Capacity == 0 {
		t.Fatalf("/debug/ops: %+v err=%v", ops, err)
	}
	var matches []storenet.OpsRecord
	for _, r := range ops.Records {
		if r.TraceID == get.Context.TraceID.String() {
			matches = append(matches, r)
		}
	}
	if len(matches) != 1 {
		t.Fatalf("want exactly 1 ops record for trace %s, got %d: %+v",
			get.Context.TraceID, len(matches), matches)
	}
	rec := matches[0]
	if rec.SpanID != get.Context.SpanID.String() || rec.Method != http.MethodGet ||
		rec.Status != http.StatusOK || !strings.Contains(rec.Path, k.Digest) {
		t.Fatalf("ops record does not match the client span: %+v", rec)
	}
	// Only data-plane requests are recorded — the /debug/ops scrape
	// itself must not appear.
	for _, r := range ops.Records {
		if strings.HasPrefix(r.Path, "/debug/") {
			t.Fatalf("debug request leaked into the flight recorder: %+v", r)
		}
	}

	// The pprof index answers on the same listener (open mode: no token
	// needed; with -tokens it would demand admin scope).
	if got := probeStatus(t, d.URL()+"/debug/pprof/"); got != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d, want 200", got)
	}
}

// writeTokensFile writes a -tokens credential file and returns its path.
func writeTokensFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDaemonAuthTokens: a daemon started with -tokens challenges /v1
// with 401, honors scopes from the file, and keeps probes and /metrics
// token-free — the full multi-tenant wiring through real flags.
func TestDaemonAuthTokens(t *testing.T) {
	tokens := writeTokensFile(t, `
# ops tenant: full control
secret-admin admin
# fleet hosts: read+write, modest rate headroom
secret-writer write rps=1000 burst=1000
# dashboards: read only
secret-reader read
`)
	d, out, stop := startDaemon(t, "-dir", t.TempDir(), "-addr", "127.0.0.1:0", "-tokens", tokens)
	defer stop()

	// Bare requests bounce with a challenge.
	resp, err := http.Get(d.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthed /v1/stats = %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without a WWW-Authenticate challenge")
	}

	// Probes and metrics never need credentials.
	for _, p := range []string{"/healthz", "/readyz", "/metrics"} {
		if got := probeStatus(t, d.URL()+p); got != http.StatusOK {
			t.Errorf("token-free %s = %d, want 200", p, got)
		}
	}

	// A writer token round-trips a campaign end to end.
	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{Token: "secret-writer"})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("authed round trip: %+v ok=%v", res, ok)
	}

	// A reader token reads but cannot write.
	r, err := storenet.NewClient(d.URL(), storenet.ClientOptions{Token: "secret-reader"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(k); !ok {
		t.Error("reader token could not read")
	}
	if err := r.Put(k, &core.Result{DeviceName: "x"}); !errors.Is(err, storenet.ErrAuth) {
		t.Errorf("reader put err = %v, want ErrAuth", err)
	}

	if !strings.Contains(out.String(), `msg="auth tokens loaded"`) ||
		!strings.Contains(out.String(), "count=3") {
		t.Fatalf("no auth log line:\n%s", out.String())
	}
}

// TestDaemonTokenReloadOnSIGHUP: credential rotation without a
// restart. SIGHUP re-reads the -tokens file and swaps the set in
// place — the retired token stops working, the new one starts, the
// listener never drops (a concurrent /healthz prober must see an
// unbroken run of 200s), and a malformed rotation is rejected with the
// working set kept in force.
func TestDaemonTokenReloadOnSIGHUP(t *testing.T) {
	tokens := writeTokensFile(t, "old-token admin\n")
	d, out, stop := startDaemon(t, "-dir", t.TempDir(), "-addr", "127.0.0.1:0", "-tokens", tokens)
	defer stop()

	authedStatus := func(token string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, d.URL()+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("authed request: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := authedStatus("old-token"); got != http.StatusOK {
		t.Fatalf("pre-rotation old token = %d, want 200", got)
	}

	// Hammer /healthz for the whole rotation: a reload that drops the
	// listener or blocks the mux would surface here as an error or
	// non-200.
	probeStop := make(chan struct{})
	probeErr := make(chan error, 1)
	go func() {
		defer close(probeErr)
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			resp, err := http.Get(d.URL() + "/healthz")
			if err != nil {
				probeErr <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				probeErr <- fmt.Errorf("healthz = %d during token reload", resp.StatusCode)
				return
			}
		}
	}()

	// Rotate: rewrite the file, poke the daemon.
	if err := os.WriteFile(tokens, []byte("new-token admin\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for authedStatus("old-token") != http.StatusUnauthorized ||
		authedStatus("new-token") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("SIGHUP never swapped the token set")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A botched rotation (malformed file) is rejected: the reload is
	// logged as failed and the working set stays in force.
	if err := os.WriteFile(tokens, []byte("tok not-a-scope\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for !strings.Contains(out.String(), "auth reload failed") {
		if time.Now().After(deadline) {
			t.Fatalf("failed reload never logged:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := authedStatus("new-token"); got != http.StatusOK {
		t.Fatalf("after failed reload, working token = %d, want 200", got)
	}

	close(probeStop)
	if err := <-probeErr; err != nil {
		t.Fatalf("probe blipped during rotation: %v", err)
	}
	if !strings.Contains(out.String(), `msg="auth reloaded"`) ||
		!strings.Contains(out.String(), "count=1") ||
		!strings.Contains(out.String(), "path="+tokens) {
		t.Fatalf("no reload log line:\n%s", out.String())
	}
}

// TestDaemonTokenExpiry: validity windows flow from the -tokens file
// through the real daemon. An expired or not-yet-valid credential gets
// the same 401 an unknown token would; a SIGHUP that renews the expired
// credential's window brings it back — the no-flag-day rotation story
// end to end. Windows use far-past/far-future instants, so nothing here
// races the clock.
func TestDaemonTokenExpiry(t *testing.T) {
	tokens := writeTokensFile(t, `
live    admin nbf=2020-01-01T00:00:00Z expires=2100-01-01T00:00:00Z
retired admin expires=2020-01-01T00:00:00Z
staged  admin nbf=2100-01-01T00:00:00Z
`)
	d, _, stop := startDaemon(t, "-dir", t.TempDir(), "-addr", "127.0.0.1:0", "-tokens", tokens)
	defer stop()

	authedGet := func(token string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, d.URL()+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := authedGet("live").StatusCode; got != http.StatusOK {
		t.Fatalf("in-window token = %d, want 200", got)
	}
	for _, token := range []string{"retired", "staged"} {
		resp := authedGet(token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("%s token = %d, want 401", token, resp.StatusCode)
		}
		if ch := resp.Header.Get("WWW-Authenticate"); !strings.Contains(ch, `error="invalid_token"`) {
			t.Fatalf("%s token challenge = %q, want invalid_token", token, ch)
		}
	}

	// Rotation: the operator renews the retired credential's window and
	// pokes the daemon once. No restart, no flag day.
	if err := os.WriteFile(tokens, []byte("retired admin expires=2100-01-01T00:00:00Z\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for authedGet("retired").StatusCode != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("renewed token never came back after SIGHUP")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := authedGet("live").StatusCode; got != http.StatusUnauthorized {
		t.Fatalf("rotated-out token = %d, want 401", got)
	}
}

// selfSignedCert writes a fresh ECDSA localhost certificate and key as
// PEM files and returns their paths plus a pool trusting the cert.
func selfSignedCert(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "stored-test"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AddCert(cert)
	return certFile, keyFile, pool
}

// TestDaemonTLS: -cert/-key turn the listener into HTTPS end to end — a
// client trusting the cert round-trips a blob over the encrypted
// transport, and d.URL() advertises the https scheme.
func TestDaemonTLS(t *testing.T) {
	certFile, keyFile, pool := selfSignedCert(t)
	d, _, stop := startDaemon(t, "-dir", t.TempDir(), "-addr", "127.0.0.1:0",
		"-cert", certFile, "-key", keyFile)
	defer stop()

	if !strings.HasPrefix(d.URL(), "https://") {
		t.Fatalf("URL = %q, want https scheme", d.URL())
	}
	hc := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{RootCAs: pool},
	}}
	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{HTTPClient: hc})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	if res, ok := c.Get(k); !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("TLS round trip: %+v ok=%v", res, ok)
	}
}

func TestDaemonAuthFlagValidation(t *testing.T) {
	var out bytes.Buffer
	dir := t.TempDir()
	if _, err := newDaemon([]string{"-dir", dir, "-cert", "cert.pem"}, &out); err == nil {
		t.Error("-cert without -key accepted")
	}
	if _, err := newDaemon([]string{"-dir", dir, "-key", "key.pem"}, &out); err == nil {
		t.Error("-key without -cert accepted")
	}
	if _, err := newDaemon([]string{"-dir", dir, "-tokens", filepath.Join(dir, "missing")}, &out); err == nil {
		t.Error("unreadable -tokens file accepted")
	}
	bad := filepath.Join(dir, "bad-tokens")
	if err := os.WriteFile(bad, []byte("tok not-a-scope\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon([]string{"-dir", dir, "-tokens", bad}, &out); err == nil {
		t.Error("malformed -tokens file accepted")
	}
}

// TestDaemonProbesSurviveAuthAndDrain is the regression for the probe
// bug class: a daemon that is simultaneously auth-protected, rate
// limited (tenant bucket dry), and draining must still answer
// /healthz, /readyz and /metrics without a token — otherwise the
// orchestrator kills a pod for being busy.
func TestDaemonProbesSurviveAuthAndDrain(t *testing.T) {
	tokens := writeTokensFile(t, "tight write rps=0.001 burst=1\n")
	dir := t.TempDir()
	out := &syncBuffer{}
	d, err := newDaemon([]string{"-dir", dir, "-addr", "127.0.0.1:0",
		"-tokens", tokens, "-drain-grace", "750ms"}, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx) }()

	// Exhaust the tenant's request bucket: one request spends the burst,
	// the next bounces 429.
	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodGet, d.URL()+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer tight")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if i == 1 && resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("second authed request = %d, want 429", resp.StatusCode)
		}
	}

	// Now start draining — and assert every probe still answers
	// token-free while the tenant is throttled and readiness is down.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for probeStatus(t, d.URL()+"/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after the shutdown signal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining+throttled = %d, want 200", got)
	}
	if got := probeStatus(t, d.URL()+"/metrics"); got != http.StatusOK {
		t.Fatalf("metrics while draining+throttled = %d, want 200", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
}
