package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"golatest/internal/core"
	"golatest/internal/store"
	"golatest/internal/storenet"
)

// syncBuffer lets the daemon's concurrent log writes race-safely meet
// the test's assertions.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func startDaemon(t *testing.T, args ...string) (*daemon, *syncBuffer, func()) {
	t.Helper()
	out := &syncBuffer{}
	d, err := newDaemon(args, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx) }()
	stop := func() {
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("serve: %v", err)
		}
	}
	return d, out, stop
}

// TestDaemonServesStore: end to end through the real binary wiring — a
// storenet.Client round-trips a campaign through a stored instance on
// an ephemeral loopback port.
func TestDaemonServesStore(t *testing.T) {
	dir := t.TempDir()
	d, out, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0")

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705, 1410}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	res, ok := c.Get(k)
	if !ok || res.DeviceName != "a100[0]" {
		t.Fatalf("round trip: %+v ok=%v", res, ok)
	}

	// The daemon's stats endpoint agrees with its directory.
	resp, err := http.Get(d.URL() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Blobs int `json:"blobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Blobs != 1 {
		t.Fatalf("stats = %+v err=%v", stats, err)
	}

	stop() // graceful shutdown must drain and report cleanly
	if !strings.Contains(out.String(), "stored: serving "+dir) ||
		!strings.Contains(out.String(), "stored: shut down") {
		t.Fatalf("daemon log:\n%s", out.String())
	}

	// The state survived: a fresh local handle over the directory reads
	// what the daemon stored.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(k); !ok {
		t.Fatal("blob did not survive the daemon")
	}
}

// TestDaemonBackgroundGC: with -gc-every and a tiny watermark, the
// daemon evicts stored blobs on its own.
func TestDaemonBackgroundGC(t *testing.T) {
	dir := t.TempDir()
	d, _, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0",
		"-gc-every", "10ms", "-gc-watermark-bytes", "1")
	defer stop()

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for d.st.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("background GC never evicted past the watermark")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if _, err := newDaemon([]string{}, &out); err == nil {
		t.Error("missing -dir accepted")
	}
	if _, err := newDaemon([]string{"-dir", t.TempDir(), "-gc-watermark-bytes", "1"}, &out); err == nil {
		t.Error("-gc-watermark-bytes without -gc-every accepted")
	}
	if _, err := newDaemon([]string{"-dir", t.TempDir(), "-addr", "not:an:addr"}, &out); err == nil {
		t.Error("bogus -addr accepted")
	}
}

// TestDaemonStatsLine: with -stats-every the daemon periodically logs
// the /v1/stats view — blobs, compressed vs raw bytes, traffic, lease
// churn — without any client asking for it.
func TestDaemonStatsLine(t *testing.T) {
	dir := t.TempDir()
	d, out, stop := startDaemon(t, "-dir", dir, "-addr", "127.0.0.1:0", "-stats-every", "10ms")
	defer stop()

	c, err := storenet.NewClient(d.URL(), storenet.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k, err := store.KeyFor("a100", 0, 42, core.Config{Frequencies: []float64{705}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, &core.Result{DeviceName: "a100[0]"}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.TryAcquire(k.Digest, "host-a", time.Minute); err != nil || !ok {
		t.Fatalf("lease: ok=%v err=%v", ok, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		s := out.String()
		if strings.Contains(s, "stored: stats: 1 blobs") &&
			strings.Contains(s, "1 puts") && strings.Contains(s, "1 acquired") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no stats line with blob/put/lease counts:\n%s", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// probeStatus fetches a probe path and returns its status code.
func probeStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("probe %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestDaemonProbes covers the orchestration contract: /healthz answers
// 200 for the life of the process, /readyz answers 200 while serving,
// flips to 503 the moment a shutdown signal arrives (the -drain-grace
// window, during which the daemon still serves traffic), and reflects a
// store directory that stopped accepting writes.
func TestDaemonProbes(t *testing.T) {
	dir := t.TempDir()
	out := &syncBuffer{}
	d, err := newDaemon([]string{"-dir", dir, "-addr", "127.0.0.1:0", "-drain-grace", "750ms"}, out)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.serve(ctx) }()

	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", got)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", got)
	}

	// An unwritable store flips readiness but not liveness: restarting
	// the process would not fix the directory.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz with the store dir gone = %d, want 503", got)
	}
	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz with the store dir gone = %d, want 200", got)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if got := probeStatus(t, d.URL()+"/readyz"); got != http.StatusOK {
		t.Fatalf("readyz after the dir returned = %d, want 200", got)
	}

	// Shutdown: within the drain grace the daemon still serves — with
	// readiness already withdrawn.
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for probeStatus(t, d.URL()+"/readyz") != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 after the shutdown signal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := probeStatus(t, d.URL()+"/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200 (still serving)", got)
	}
	if got := probeStatus(t, d.URL()+"/v1/stats"); got != http.StatusOK {
		t.Fatalf("API while draining = %d, want 200 (in-flight traffic must finish)", got)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "draining") {
		t.Fatalf("no drain log line:\n%s", s)
	}
}
