package golatest

import (
	"testing"

	"golatest/internal/experiments"
	"golatest/internal/store"
)

// TestBlobCompressionRatio is the acceptance gate of the v2 blob
// container on real data: one quick-scale A100 campaign persisted
// through the store must compress at least 3× (full-scale blobs, with
// their longer sample arrays, compress better still). The logged
// blob_compression_ratio line is scraped by scripts/bench_smoke.sh
// into BENCH_campaign.json.
func TestBlobCompressionRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("runs one quick A100 campaign")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := experiments.NewSuite(experiments.Options{
		Scale: experiments.ScaleQuick, Seed: 7, Store: st,
	})
	if _, err := s.CampaignByKey("a100"); err != nil {
		t.Fatal(err)
	}
	ix := st.Index()
	if len(ix) != 1 {
		t.Fatalf("store indexes %d blobs, want the one campaign", len(ix))
	}
	e := ix[0]
	if e.Bytes <= 0 || e.RawBytes <= 0 {
		t.Fatalf("entry sizes not recorded: %+v", e)
	}
	ratio := float64(e.RawBytes) / float64(e.Bytes)
	t.Logf("blob_compression_ratio=%.2f raw_bytes=%d compressed_bytes=%d", ratio, e.RawBytes, e.Bytes)
	if ratio < 3 {
		t.Fatalf("quick-scale blob compresses only %.2fx (%d -> %d bytes), want >= 3x",
			ratio, e.RawBytes, e.Bytes)
	}
}
